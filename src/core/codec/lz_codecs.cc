// szp — the LZ77-family quant-code codecs: lz77 (raw tokens), lzh (LZ77 +
// canonical Huffman, the gzip stand-in) and lzr (LZ77 + rANS, the Zstd
// stand-in).  These wrap the byte-level lossless tier (src/lossless/) as
// pipeline codecs: quant-codes are packed to a little-endian byte stream by
// a registered tile kernel, the LZ machinery runs over the bytes, and the
// decode side validates every declared size against the header-derived
// element count before allocating (DecodeError taxonomy throughout).
//
// The paper's reference schemes qg/qhg bolt gzip onto the *host* after the
// GPU stages (§II-A, Table I); these codecs reproduce that tier inside the
// archive format so the selector can price it against the GPU codecs — the
// LZ parse is serial (parallel_items = 1), and the cost model makes that
// penalty visible instead of hiding it off-pipeline.
#include <algorithm>
#include <cmath>
#include <string>

#include "core/codec/codec.hh"
#include "core/error.hh"
#include "core/pipeline/builtin.hh"
#include "lossless/lz77.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/check.hh"
#include "sim/launch.hh"
#include "sim/timer.hh"
#include "sim/traffic.hh"

namespace szp::pipeline {

namespace {

namespace chk = sim::checked;
namespace ctr = sim::contract;

constexpr std::size_t kPackTile = 1 << 14;

/// quant_t (u16) -> little-endian byte stream, tile-parallel.  Fills
/// `bytes` (capacity-preserving; callers pass Workspace::codec_bytes).
void quant_pack(std::span<const quant_t> quant, std::vector<std::uint8_t>& bytes) {
  const std::size_t n = quant.size();
  bytes.resize(n * sizeof(quant_t));
  constexpr auto kTile64 = static_cast<std::int64_t>(kPackTile);
  chk::launch("codec/quant_pack", sim::div_ceil(n, kPackTile),
              chk::bufs(chk::in(quant, "quant"),
                        chk::out(std::span<std::uint8_t>(bytes), "bytes")),
              ctr::contract(ctr::reads("quant", ctr::b() * kTile64, kTile64).clamp(),
                            ctr::writes("bytes", ctr::b() * 2 * kTile64, 2 * kTile64).clamp()),
              [&, n](std::size_t t, const auto& vq, const auto& vb) {
    const std::size_t lo = t * kPackTile;
    const std::size_t hi = std::min(lo + kPackTile, n);
    for (std::size_t i = lo; i < hi; ++i) {
      chk::this_thread(static_cast<std::uint32_t>(i - lo));
      const auto q = static_cast<std::uint16_t>(vq[i]);
      vb[2 * i] = static_cast<std::uint8_t>(q & 0xffu);
      vb[2 * i + 1] = static_cast<std::uint8_t>(q >> 8);
    }
  });
}

/// Little-endian byte stream -> quant_t span (mirror of quant_pack).  The
/// byte count was validated against 2 * out.size() by the caller.
void quant_unpack(std::span<const std::uint8_t> bytes, std::span<quant_t> out) {
  const std::size_t n = out.size();
  constexpr auto kTile64 = static_cast<std::int64_t>(kPackTile);
  chk::launch("codec/quant_unpack", sim::div_ceil(n, kPackTile),
              chk::bufs(chk::in(bytes, "bytes"), chk::out(out, "quant")),
              ctr::contract(ctr::reads("bytes", ctr::b() * 2 * kTile64, 2 * kTile64).clamp(),
                            ctr::writes("quant", ctr::b() * kTile64, kTile64).clamp()),
              [&, n](std::size_t t, const auto& vb, const auto& vq) {
    const std::size_t lo = t * kPackTile;
    const std::size_t hi = std::min(lo + kPackTile, n);
    for (std::size_t i = lo; i < hi; ++i) {
      chk::this_thread(static_cast<std::uint32_t>(i - lo));
      vq[i] = static_cast<quant_t>(static_cast<std::uint16_t>(vb[2 * i]) |
                                   (static_cast<std::uint16_t>(vb[2 * i + 1]) << 8));
    }
  });
}

/// Expanded byte-stream size must equal the packed quant-code stream.
void require_packed_size(std::size_t got, std::size_t n, const char* codec) {
  if (got != n * sizeof(quant_t)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                      std::string(codec) + " stream expands to " + std::to_string(got) +
                          " bytes, the " + std::to_string(n) + "-element grid packs to " +
                          std::to_string(n * sizeof(quant_t)));
  }
}

// --- Shared histogram-only LZ projection ----------------------------------

/// What the estimate() heuristics project about an LZ77 parse of the packed
/// byte stream, from the quant histogram alone.
struct LzProjection {
  double match_tokens_per_sym = 0.0;  ///< match tokens per quant symbol
  double lit_bytes_per_sym = 0.0;     ///< literal bytes per quant symbol
  double lit_entropy_bits = 0.0;      ///< projected bits per literal byte
};

LzProjection project_lz(const CodecSignals& sig) {
  LzProjection p;
  const double change = std::max(1e-12, 1.0 - sig.stats.p1);
  // Runs of the dominant symbol pack to 2/(1-p1)-byte repeats; the parse
  // covers them with matches once they clear the 3-byte minimum, leaving a
  // literal head per run.  Matches cap at 258 bytes.
  const double run_bytes = 2.0 / change;
  const double match_cov =
      run_bytes > 3.0 ? std::min(0.98, sig.stats.p1 * (run_bytes - 3.0) / run_bytes) : 0.0;
  const double match_len = std::clamp(run_bytes, 3.0, 258.0);
  p.match_tokens_per_sym = 2.0 * match_cov / match_len;
  p.lit_bytes_per_sym = 2.0 * (1.0 - match_cov);
  // Splitting a quant code into two bytes costs an order-0 byte coder the
  // high↔low mutual information on top of the halved entropy; the +2.4
  // excess is calibrated against measured lzh/lzr sections on iid noise
  // (test_selector_model.cc holds the ordering against remeasurement).
  p.lit_entropy_bits = std::clamp((sig.stats.entropy_bits + 2.4) / 2.0, 0.05, 8.0);
  return p;
}

/// The serial hash-chain parse: contract traffic over input + chains, no
/// parallelism (one block).  This is the honest price of the host-style
/// dictionary tier and why the selector only picks LZ under ratio-heavy
/// objectives.
sim::KernelCost lz_parse_cost(std::size_t n) {
  sim::KernelCost c;
  const std::uint64_t bytes = n * sizeof(quant_t);
  c.bytes_read = bytes * 10;  // hash probes + match compares along the chain
  c.bytes_written = bytes / 3;
  c.flops = bytes * 50;
  c.parallel_items = 1;  // greedy parse is serial
  c.pattern = sim::AccessPattern::kScattered;
  return c;
}

sim::KernelCost lz_expand_cost(std::size_t n, double payload_bits) {
  sim::KernelCost c;
  const std::uint64_t bytes = n * sizeof(quant_t);
  c.bytes_read = static_cast<std::uint64_t>(payload_bits * static_cast<double>(n) / 8.0) + bytes;
  c.bytes_written = bytes;
  c.flops = bytes * 5;
  c.parallel_items = 1;  // back-references serialize the expansion
  c.pattern = sim::AccessPattern::kCoalescedStreaming;
  return c;
}

/// Pack/unpack tile kernels are coalesced n-way streams.
sim::KernelCost pack_cost(std::size_t n) {
  sim::KernelCost c;
  c.bytes_read = n * sizeof(quant_t);
  c.bytes_written = n * sizeof(quant_t);
  c.flops = n;
  c.parallel_items = std::max<std::uint64_t>(1, n);
  c.pattern = sim::AccessPattern::kCoalescedStreaming;
  return c;
}

// --- lz77: raw token stream -------------------------------------------------

class Lz77Codec final : public LosslessCodec {
 public:
  [[nodiscard]] Workflow id() const override { return Workflow::kLz77; }
  [[nodiscard]] const char* name() const override { return "lz77"; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    sim::KernelCost cost = pack_cost(quant.size());
    std::vector<lossless::Lz77Token> tokens;
    {
      sim::traffic::Scope scope;  // contract-derived volumes (pack + parse)
      quant_pack(quant, ws.codec_bytes);
      tokens = lossless::lz77_tokenize(ws.codec_bytes);
      scope.apply(cost);
    }
    cost.flops = quant.size_bytes() * 50;
    cost.parallel_items = 1;  // greedy parse is serial
    cost.pattern = sim::AccessPattern::kScattered;
    report.add({"lz77_encode", ctx.original_bytes, t.seconds(), cost});
    w.put<std::uint64_t>(tokens.size());
    for (const auto& tok : tokens) {
      w.put<std::uint16_t>(tok.litlen_sym);
      w.put<std::uint16_t>(tok.len_extra);
      w.put<std::uint8_t>(tok.dist_sym);
      w.put<std::uint16_t>(tok.dist_extra);
    }
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    r.set_segment("quant-codes");
    const auto count = r.get<std::uint64_t>();
    constexpr std::size_t kTokenBytes = 7;
    if (count == 0 || count > r.remaining() / kTokenBytes) {
      // Validated against the remaining bytes before the token loop so a
      // spliced count cannot drive allocation or a long parse.
      throw DecodeError(DecodeErrorKind::kLengthOverflow, "quant-codes",
                        "lz77 token count " + std::to_string(count) + " x " +
                            std::to_string(kTokenBytes) + " bytes exceeds the " +
                            std::to_string(r.remaining()) + " remaining");
    }
    const std::size_t packed = out.size() * sizeof(quant_t);
    std::vector<std::uint8_t> bytes;
    bytes.reserve(packed);
    sim::KernelCost cost;
    {
      sim::traffic::Scope scope;
      for (std::uint64_t i = 0; i < count; ++i) {
        lossless::Lz77Token tok;
        tok.litlen_sym = r.get<std::uint16_t>();
        tok.len_extra = r.get<std::uint16_t>();
        tok.dist_sym = r.get<std::uint8_t>();
        tok.dist_extra = r.get<std::uint16_t>();
        const bool more = lossless::lz77_expand(tok, bytes);
        if (!more && i + 1 != count) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                            "lz77 end-of-block token before the declared stream end");
        }
        if (more && i + 1 == count) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                            "lz77 token stream is missing the end-of-block token");
        }
        if (bytes.size() > packed) {
          throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                            "lz77 stream expands past the " + std::to_string(out.size()) +
                                "-element grid");
        }
      }
      require_packed_size(bytes.size(), out.size(), "lz77");
      quant_unpack(bytes, out);
      scope.apply(cost);
    }
    cost.flops = packed * 5;
    cost.parallel_items = 1;
    report.add({"lz77_decode", ctx.payload_bytes, t.seconds(), cost});
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const LzProjection p = project_lz(sig);
    CodecEstimate e;
    // Raw tokens are 7 bytes each, literals included.
    e.payload_bits_per_symbol = 56.0 * (p.match_tokens_per_sym + p.lit_bytes_per_sym);
    e.fixed_bytes = 8.0 + 56.0;  // token count + end-of-block token
    e.encode_cost = pack_cost(sig.n);
    e.encode_cost += lz_parse_cost(sig.n);
    e.decode_cost = lz_expand_cost(sig.n, e.payload_bits_per_symbol);
    e.decode_cost += pack_cost(sig.n);
    return e;
  }
};

// --- lzh / lzr: LZ77 + entropy stage over the packed bytes ------------------

/// Common encode/decode shell of the two entropy-coded LZ codecs; the
/// compress/expand calls and estimate constants differ.
template <typename Derived>
class LzEntropyCodec : public LosslessCodec {
 public:
  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    sim::KernelCost cost = pack_cost(quant.size());
    std::vector<std::uint8_t> payload;
    {
      sim::traffic::Scope scope;  // pack + parse + entropy kernels
      quant_pack(quant, ws.codec_bytes);
      payload = Derived::compress_bytes(ws.codec_bytes);
      scope.apply(cost);
    }
    cost.flops = quant.size_bytes() * 50;
    cost.parallel_items = 1;  // greedy parse is serial
    cost.pattern = sim::AccessPattern::kScattered;
    report.add({Derived::kEncodeStage, ctx.original_bytes, t.seconds(), cost});
    w.put_vector(payload);
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    r.set_segment("quant-codes");
    // get_bytes() validates the declared length against the remaining bytes
    // before anything is allocated; the nested stream validates its own
    // declared original size before reserving (lzh.cc / lzr.cc).
    const auto payload = r.get_bytes();
    sim::KernelCost cost;
    {
      sim::traffic::Scope scope;
      const auto bytes = Derived::decompress_bytes(payload);
      require_packed_size(bytes.size(), out.size(), Derived::kName);
      quant_unpack(bytes, out);
      scope.apply(cost);
    }
    cost.flops = out.size() * sizeof(quant_t) * 5;
    cost.parallel_items = 1;
    report.add({Derived::kDecodeStage, ctx.payload_bytes, t.seconds(), cost});
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const LzProjection p = project_lz(sig);
    CodecEstimate e;
    e.payload_bits_per_symbol = Derived::kMatchTokenBits * p.match_tokens_per_sym +
                                Derived::lit_bits_per_byte(p.lit_entropy_bits) * p.lit_bytes_per_sym;
    e.fixed_bytes = Derived::kFixedBytes;
    e.encode_cost = pack_cost(sig.n);
    e.encode_cost += lz_parse_cost(sig.n);
    e.decode_cost = lz_expand_cost(sig.n, e.payload_bits_per_symbol);
    e.decode_cost += pack_cost(sig.n);
    return e;
  }
};

class LzhCodec final : public LzEntropyCodec<LzhCodec> {
 public:
  static constexpr const char* kName = "lzh";
  static constexpr const char* kEncodeStage = "lzh_encode";
  static constexpr const char* kDecodeStage = "lzh_decode";
  /// Length code + extras + distance code + extras under the canonical
  /// books (DEFLATE-shaped averages).
  static constexpr double kMatchTokenBits = 22.0;
  /// Huffman literals: 1-bit floor per literal byte, same cliff as the
  /// native Huffman codec's per-symbol floor.
  static double lit_bits_per_byte(double entropy) { return std::max(1.0, entropy); }
  /// Two serialized codebooks + stream framing.
  static constexpr double kFixedBytes = 220.0;

  [[nodiscard]] Workflow id() const override { return Workflow::kLzh; }
  [[nodiscard]] const char* name() const override { return kName; }

  static std::vector<std::uint8_t> compress_bytes(std::span<const std::uint8_t> bytes) {
    return lossless::lzh_compress(bytes);
  }
  static std::vector<std::uint8_t> decompress_bytes(std::span<const std::uint8_t> payload) {
    return lossless::lzh_decompress(payload);
  }
};

class LzrCodec final : public LzEntropyCodec<LzrCodec> {
 public:
  static constexpr const char* kName = "lzr";
  static constexpr const char* kEncodeStage = "lzr_encode";
  static constexpr const char* kDecodeStage = "lzr_decode";
  /// rANS codes the token streams at their entropy — slightly below the
  /// Huffman-coded average.
  static constexpr double kMatchTokenBits = 20.0;
  /// rANS literals: fractional bits with the same 1% quantized-probability
  /// excess as the native rANS codec, no floor.
  static double lit_bits_per_byte(double entropy) { return entropy * 1.01; }
  /// Two serialized rANS models + stream framing.
  static constexpr double kFixedBytes = 260.0;

  [[nodiscard]] Workflow id() const override { return Workflow::kLzr; }
  [[nodiscard]] const char* name() const override { return kName; }

  static std::vector<std::uint8_t> compress_bytes(std::span<const std::uint8_t> bytes) {
    return lossless::lzr_compress(bytes);
  }
  static std::vector<std::uint8_t> decompress_bytes(std::span<const std::uint8_t> payload) {
    return lossless::lzr_decompress(payload);
  }
};

}  // namespace

std::unique_ptr<LosslessCodec> make_lz77_codec() { return std::make_unique<Lz77Codec>(); }
std::unique_ptr<LosslessCodec> make_lzh_codec() { return std::make_unique<LzhCodec>(); }
std::unique_ptr<LosslessCodec> make_lzr_codec() { return std::make_unique<LzrCodec>(); }

}  // namespace szp::pipeline

