// szp — the pluggable lossless codec tier.
//
// Every quant-code payload format — chunked Huffman, RLE, RLE+VLE, rANS,
// and the LZ77 family (lz77/lzh/lzr) — implements LosslessCodec: one object
// owns both serialization directions of its section *and* a static cost
// estimate the selector (core/analysis/selector.hh) ranks codecs with.
// Compressor, streaming tier, CLI, fuzz harness, and benches all reach the
// codecs through StageRegistry lookups (core/pipeline/registry.hh), so
// adding a codec is: implement this interface, register it, allot the next
// Workflow tag (the archive header stores it — tags are append-only, and
// tags past kRans bump the archive format to version 3).
//
// Contract highlights:
//   * encode() serializes the codec's self-describing section directly
//     after the outlier section; decode() must consume exactly those bytes
//     and fill the caller's n-element span (throwing DecodeError with the
//     taxonomy of core/error.hh on any inconsistency, always validating
//     declared sizes *before* allocating).
//   * Kernels run as registered checked launches with footprint contracts,
//     so `--check=word`, `szp analyze` and the traffic analyzer cover every
//     codec equally.
//   * estimate() is histogram-only — no trial encode.  Its KernelCosts use
//     the same analytic formulas the real kernels report, so the modeled
//     encode/decode seconds the selector ranks match what PipelineReport
//     would show.
#pragma once

#include <cstdint>
#include <span>

#include "core/compressor.hh"
#include "core/serialize.hh"
#include "core/workspace.hh"
#include "sim/profile.hh"

namespace szp::pipeline {

/// Everything an encoder needs besides the quant-codes themselves.
struct EncodeContext {
  const CompressConfig& cfg;
  std::span<const std::uint64_t> freq;  ///< quant-code histogram
  std::size_t original_bytes = 0;       ///< for PipelineReport entries
};

/// Decode-side inputs: the expected element count (validated against the
/// header before any decode-driven allocation) and the uncompressed payload
/// size used as the throughput denominator in reports.
struct DecodeContext {
  std::size_t n = 0;
  std::size_t payload_bytes = 0;
};

/// Histogram-derived signals estimate() projects from (no trial encode).
struct CodecSignals {
  EntropyStats stats;                   ///< entropy_stats(freq)
  std::span<const std::uint64_t> freq;  ///< quant-code histogram
  std::size_t n = 0;                    ///< symbol count (stats.total)
  std::size_t bytes_per_value = 4;      ///< uncompressed element width
  std::uint32_t huffman_chunk = 4096;   ///< configured encode chunk size
};

/// What estimate() projects: payload density, fixed section overhead, and
/// the analytic kernel costs of both directions.
struct CodecEstimate {
  double payload_bits_per_symbol = 0.0;  ///< projected ⟨b⟩ of the payload
  double fixed_bytes = 0.0;              ///< books/tables/chunk metadata
  sim::KernelCost encode_cost;
  sim::KernelCost decode_cost;
};

/// One lossless quant-code codec: both serialization directions of its
/// archive section plus the static cost estimate the selector ranks.
class LosslessCodec {
 public:
  virtual ~LosslessCodec() = default;

  /// The serialized codec id — stored in the archive header's workflow slot.
  [[nodiscard]] virtual Workflow id() const = 0;
  /// Stable display name (CLI `--codec` values, `analyze --codecs` rows).
  [[nodiscard]] virtual const char* name() const = 0;

  /// Serialize the quant-code section into `w`, reporting kernels into
  /// `report` (stage names are pinned by tests and benches).
  virtual void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
                      ByteWriter& w, sim::PipelineReport& report) const = 0;

  /// Mirror of encode(): parse the section and fill all of `out` (whose
  /// size is the header-validated element count).  Throws DecodeError when
  /// the section is inconsistent or does not hold exactly out.size()
  /// symbols.
  virtual void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
                      sim::PipelineReport& report) const = 0;

  /// Histogram-only projection of density and kernel cost (see CodecEstimate).
  [[nodiscard]] virtual CodecEstimate estimate(const CodecSignals& sig) const = 0;
};

}  // namespace szp::pipeline

