// szp — the built-in LosslessCodec implementations, one per Workflow:
// chunked Huffman, RLE, RLE+VLE (Huffman over both run streams), and rANS.
// Each transplants the corresponding EncodeStage/DecodeStage pair of the
// former stage split; the section byte layouts and the PipelineReport stage
// names are pinned by the golden-archive tests.  estimate() mirrors, per
// codec, the analytic KernelCost formulas the real kernels report, so the
// selector's modeled seconds agree with the PipelineReport of an actual run.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/codec/codec.hh"
#include "core/error.hh"
#include "core/huffman/codec.hh"
#include "core/pipeline/builtin.hh"
#include "core/rans.hh"
#include "core/rle/rle.hh"
#include "sim/histogram.hh"
#include "sim/timer.hh"

namespace szp::pipeline {

namespace {

void write_huffman_section(ByteWriter& w, const HuffmanCodebook& book,
                           const HuffmanEncoded& enc) {
  book.serialize(w);
  w.put<std::uint64_t>(enc.num_symbols);
  w.put<std::uint32_t>(enc.chunk_size);
  w.put<std::uint32_t>(enc.gap_stride);
  w.put_vector(enc.chunk_offsets);
  if (enc.gap_stride > 0) w.put_vector(enc.gaps);
  w.put_vector(enc.payload);
}

struct HuffmanSection {
  HuffmanCodebook book;
  HuffmanEncoded enc;
};

HuffmanSection read_huffman_section(ByteReader& r) {
  HuffmanSection s;
  s.book = HuffmanCodebook::deserialize(r);
  r.set_segment("huffman stream");
  s.enc.num_symbols = r.get<std::uint64_t>();
  s.enc.chunk_size = r.get<std::uint32_t>();
  s.enc.gap_stride = r.get<std::uint32_t>();
  s.enc.chunk_offsets = r.get_vector<std::uint64_t>();
  if (s.enc.gap_stride > 0) s.enc.gaps = r.get_vector<std::uint32_t>();
  s.enc.payload = r.get_vector<std::uint8_t>();
  return s;
}

/// Copy a decoded symbol vector into the caller's span, enforcing the
/// header-validated element count (shared by every built-in decode path).
void deliver_symbols(const std::vector<quant_t>& symbols, std::span<quant_t> out) {
  if (symbols.size() != out.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                      "decoded " + std::to_string(symbols.size()) + " symbols, the grid holds " +
                          std::to_string(out.size()));
  }
  std::copy(symbols.begin(), symbols.end(), out.begin());
}

/// Live (nonzero) histogram entries — the serialized size of the sparse
/// codebook/model forms depends on it.
std::size_t live_symbols(std::span<const std::uint64_t> freq) {
  std::size_t live = 0;
  for (const auto f : freq) live += f > 0 ? 1u : 0u;
  return live;
}

/// Projected run count of an RLE pass: geometric runs at change rate
/// (1 − p1), plus the u16 length cap splitting oversized runs.
double estimated_runs(const CodecSignals& sig) {
  const double n = static_cast<double>(sig.n);
  const double change = std::max(1e-12, 1.0 - sig.stats.p1);
  return std::max(1.0, std::max(n * change, n / 65535.0));
}

/// Serialized size of a sparse Huffman codebook (alphabet u32, live u32,
/// live × (symbol u32 + length u8)).
double huffman_book_bytes(std::size_t live) { return 8.0 + 5.0 * static_cast<double>(live); }

/// Fixed framing of one Huffman section beyond the codebook: num_symbols,
/// chunk_size, gap_stride, and the offsets/payload vector headers plus one
/// u64 offset per chunk (+1 sentinel).
double huffman_section_bytes(double symbols, std::uint32_t chunk) {
  const double chunks = std::ceil(symbols / std::max(1u, chunk)) + 1.0;
  return 8.0 + 4.0 + 4.0 + 8.0 + 8.0 * chunks + 8.0;
}

/// Analytic encode cost of a chunked-Huffman pass over `symbols` symbols at
/// `bits` bits each — same shape huffman_encode_into() reports.
sim::KernelCost huffman_encode_cost(double symbols, double bits, std::size_t book_live) {
  sim::KernelCost c;
  c.bytes_read = static_cast<std::uint64_t>(symbols) * sizeof(quant_t) + book_live * 9;
  c.bytes_written = static_cast<std::uint64_t>(symbols * bits / 8.0);
  c.flops = static_cast<std::uint64_t>(symbols) * 8;
  c.parallel_items = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(symbols));
  c.pattern = sim::AccessPattern::kScattered;
  c.custom_factor = 0.09;  // calibrated to Table VI Huffman rows
  c.launches = 3;          // chunk_sizes + scan + deflate
  return c;
}

/// Analytic decode cost of the chunked-Huffman inflate — same shape
/// huffman_decode() reports (bit-serial table walk, compute-bound).
sim::KernelCost huffman_decode_cost(double symbols, double bits, std::size_t book_live,
                                    std::uint32_t chunk) {
  sim::KernelCost c;
  c.bytes_read = static_cast<std::uint64_t>(symbols * bits / 8.0) + book_live * 9;
  c.bytes_written = static_cast<std::uint64_t>(symbols) * sizeof(quant_t);
  c.flops = static_cast<std::uint64_t>(symbols) *
            (130 + 320 * std::min<std::uint64_t>(chunk, 4096) / 4096);
  c.parallel_items = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(symbols));
  c.pattern = sim::AccessPattern::kCoalescedStreaming;
  return c;
}

class HuffmanCodec final : public LosslessCodec {
 public:
  [[nodiscard]] Workflow id() const override { return Workflow::kHuffman; }
  [[nodiscard]] const char* name() const override { return "huffman"; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const bool cached = ws.book_freq.size() == ctx.freq.size() &&
                        std::equal(ws.book_freq.begin(), ws.book_freq.end(), ctx.freq.begin());
    if (!cached) {
      ws.book = HuffmanCodebook::build(ctx.freq);
      ws.book_freq.assign(ctx.freq.begin(), ctx.freq.end());
    }
    report.add({"huffman_book", ctx.original_bytes, t.seconds(), ws.book.build_cost()});
    t.reset();
    huffman_encode_into(quant, ws.book, ctx.cfg.huffman_chunk, HuffmanEncVariant::kOptimized,
                        ctx.cfg.huffman_gap_stride, ws.huffman, ws.huffman_chunk_bytes);
    report.add({"huffman_encode", ctx.original_bytes, t.seconds(), ws.huffman.cost});
    write_huffman_section(w, ws.book, ws.huffman);
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    auto s = read_huffman_section(r);
    auto dec = huffman_decode(s.enc, s.book);
    report.add({"huffman_decode", ctx.payload_bytes, t.seconds(), dec.cost});
    deliver_symbols(dec.symbols, out);
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const std::size_t live = live_symbols(sig.freq);
    const double n = static_cast<double>(sig.n);
    CodecEstimate e;
    // On the near-geometric quant-code alphabets Huffman sits within a hair
    // of the entropy, so the selection estimate uses H itself; the codec's
    // real handicap — the one the paper's §III rule exploits — is the 1
    // bit/symbol floor (no code is shorter), which caps float CR at 32x.
    // Adding the Johnsen redundancy R⁻ here would hand rANS (H·1.01) a
    // spurious across-the-board ratio edge.
    e.payload_bits_per_symbol = std::max(1.0, sig.stats.entropy_bits);
    e.fixed_bytes = huffman_book_bytes(live) + huffman_section_bytes(n, sig.huffman_chunk);
    e.encode_cost = huffman_encode_cost(n, e.payload_bits_per_symbol, live);
    e.decode_cost = huffman_decode_cost(n, e.payload_bits_per_symbol, live, sig.huffman_chunk);
    return e;
  }
};

class RleCodec final : public LosslessCodec {
 public:
  [[nodiscard]] Workflow id() const override { return Workflow::kRle; }
  [[nodiscard]] const char* name() const override { return "rle"; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace&,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto rle = rle_encode(quant);
    report.add({"rle_encode", ctx.original_bytes, t.seconds(), rle.cost});
    w.put<std::uint64_t>(rle.num_symbols);
    w.put_vector(rle.values);
    w.put_vector(rle.counts);
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    RleEncoded rle;
    rle.num_symbols = r.get<std::uint64_t>();
    rle.values = r.get_vector<quant_t>();
    rle.counts = r.get_vector<std::uint16_t>();
    auto dec = rle_decode(rle);
    report.add({"rle_decode", ctx.payload_bytes, t.seconds(), dec.cost});
    deliver_symbols(dec.symbols, out);
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const double n = static_cast<double>(sig.n);
    const double runs = estimated_runs(sig);
    CodecEstimate e;
    // Each run costs 32 bits: u16 value + u16 count.
    e.payload_bits_per_symbol = 32.0 * runs / std::max(1.0, n);
    e.fixed_bytes = 8.0 + 16.0;  // num_symbols + two vector headers
    e.encode_cost.bytes_read = sig.n * sizeof(quant_t);
    e.encode_cost.bytes_written = static_cast<std::uint64_t>(runs) * 4;
    e.encode_cost.flops = sig.n;
    e.encode_cost.parallel_items = std::max<std::uint64_t>(1, sig.n);
    e.encode_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    e.encode_cost.launches = 2;  // tile_runs + merge
    e.decode_cost.bytes_read = static_cast<std::uint64_t>(runs) * 4;
    e.decode_cost.bytes_written = sig.n * sizeof(quant_t);
    e.decode_cost.flops = sig.n;
    e.decode_cost.parallel_items = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(runs));
    e.decode_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    return e;
  }
};

class RleVleCodec final : public LosslessCodec {
 public:
  [[nodiscard]] Workflow id() const override { return Workflow::kRleVle; }
  [[nodiscard]] const char* name() const override { return "rle+vle"; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace& ws,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto rle = rle_encode(quant);
    report.add({"rle_encode", ctx.original_bytes, t.seconds(), rle.cost});
    t.reset();
    // VLE over both run streams (values and lengths), each with its own
    // codebook built from its own histogram.  The streams go through the
    // workspace's codec scratch back to back, so the value section is
    // serialized before the scratch is reused for the count stream.
    sim::device_histogram_into<quant_t>(
        std::span<const quant_t>(rle.values.data(), rle.values.size()),
        ctx.cfg.quant.capacity, ws.vle_freq, ws.hist_priv);
    const auto vbook = HuffmanCodebook::build(ws.vle_freq);
    huffman_encode_into(rle.values, vbook, ctx.cfg.huffman_chunk,
                        HuffmanEncVariant::kOptimized, 0, ws.huffman, ws.huffman_chunk_bytes);
    sim::KernelCost vle_cost = ws.huffman.cost;
    w.put<std::uint64_t>(rle.num_symbols);
    write_huffman_section(w, vbook, ws.huffman);
    sim::device_histogram_into<std::uint16_t>(
        std::span<const std::uint16_t>(rle.counts.data(), rle.counts.size()), 65536,
        ws.vle_freq, ws.hist_priv);
    const auto cbook = HuffmanCodebook::build(ws.vle_freq);
    huffman_encode_into(std::span<const quant_t>(rle.counts.data(), rle.counts.size()), cbook,
                        ctx.cfg.huffman_chunk, HuffmanEncVariant::kOptimized, 0, ws.huffman,
                        ws.huffman_chunk_bytes);
    vle_cost += ws.huffman.cost;
    report.add({"rle_vle", ctx.original_bytes, t.seconds(), vle_cost});
    write_huffman_section(w, cbook, ws.huffman);
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    RleEncoded rle;
    rle.num_symbols = r.get<std::uint64_t>();
    auto vs = read_huffman_section(r);
    auto cs = read_huffman_section(r);
    auto vdec = huffman_decode(vs.enc, vs.book);
    auto cdec = huffman_decode(cs.enc, cs.book);
    rle.values = std::move(vdec.symbols);
    rle.counts.assign(cdec.symbols.begin(), cdec.symbols.end());
    auto dec = rle_decode(rle);
    sim::KernelCost cost = vdec.cost;
    cost += cdec.cost;
    cost += dec.cost;
    report.add({"rle_vle_decode", ctx.payload_bytes, t.seconds(), cost});
    deliver_symbols(dec.symbols, out);
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const double n = static_cast<double>(sig.n);
    const double runs = estimated_runs(sig);
    const std::size_t live = live_symbols(sig.freq);
    // The VLE pass compresses both 16-bit run streams.  Run values cycle
    // through the live alphabet (≈ log2(live) bits each, floored at 1);
    // run lengths cluster around the geometric mean, which canonical
    // Huffman codes in about log2(mean) + 2 bits.
    const double vbits = std::max(1.0, std::log2(static_cast<double>(std::max<std::size_t>(
                                            2, live))));
    const double mean_run = std::max(1.0, n / runs);
    const double cbits = std::max(1.0, std::log2(mean_run) + 2.0);
    CodecEstimate e;
    e.payload_bits_per_symbol = runs * (vbits + cbits) / std::max(1.0, n);
    // num_symbols + two Huffman sections: value book over the live quant
    // alphabet, count book over ~the distinct run lengths (bounded by runs).
    const double count_live = std::min(runs, 64.0);
    e.fixed_bytes = 8.0 + huffman_book_bytes(live) + huffman_section_bytes(runs, sig.huffman_chunk) +
                    huffman_book_bytes(static_cast<std::size_t>(count_live)) +
                    huffman_section_bytes(runs, sig.huffman_chunk);
    // RLE pass + two Huffman encodes over the (much shorter) run streams.
    e.encode_cost.bytes_read = sig.n * sizeof(quant_t);
    e.encode_cost.bytes_written = static_cast<std::uint64_t>(runs) * 4;
    e.encode_cost.flops = sig.n;
    e.encode_cost.parallel_items = std::max<std::uint64_t>(1, sig.n);
    e.encode_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    e.encode_cost.launches = 2;
    e.encode_cost += huffman_encode_cost(runs, vbits, live);
    e.encode_cost += huffman_encode_cost(runs, cbits, static_cast<std::size_t>(count_live));
    e.decode_cost = huffman_decode_cost(runs, vbits, live, sig.huffman_chunk);
    e.decode_cost +=
        huffman_decode_cost(runs, cbits, static_cast<std::size_t>(count_live), sig.huffman_chunk);
    sim::KernelCost expand;
    expand.bytes_read = static_cast<std::uint64_t>(runs) * 4;
    expand.bytes_written = sig.n * sizeof(quant_t);
    expand.flops = sig.n;
    expand.parallel_items = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(runs));
    expand.pattern = sim::AccessPattern::kCoalescedStreaming;
    e.decode_cost += expand;
    return e;
  }
};

class RansCodec final : public LosslessCodec {
 public:
  [[nodiscard]] Workflow id() const override { return Workflow::kRans; }
  [[nodiscard]] const char* name() const override { return "rans"; }

  void encode(std::span<const quant_t> quant, const EncodeContext& ctx, Workspace&,
              ByteWriter& w, sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto model = RansModel::build(ctx.freq);
    const auto enc =
        rans_encode(std::span<const std::uint16_t>(quant.data(), quant.size()), model);
    sim::KernelCost cost;
    cost.bytes_read = quant.size_bytes();
    cost.bytes_written = enc.size();
    cost.flops = quant.size() * 20;  // div/mod state updates
    cost.parallel_items = quant.size();
    cost.pattern = sim::AccessPattern::kScattered;
    cost.custom_factor = 0.06;  // ANS is heavier per symbol than Huffman
    cost.launches = 3;          // model build + reverse-order encode + concat
    report.add({"rans_encode", ctx.original_bytes, t.seconds(), cost});
    model.serialize(w);
    w.put<std::uint64_t>(quant.size());
    w.put_vector(enc);
  }

  void decode(ByteReader& r, const DecodeContext& ctx, std::span<quant_t> out,
              sim::PipelineReport& report) const override {
    sim::Timer t;
    const auto model = RansModel::deserialize(r);
    r.set_segment("quant-codes");
    const auto count = r.get<std::uint64_t>();
    if (count != ctx.n) {
      // Checked before rans_decode so a spliced count cannot drive the
      // symbol-buffer allocation past the grid size.
      throw DecodeError(DecodeErrorKind::kCorruptStream, "quant-codes",
                        "rans symbol count " + std::to_string(count) +
                            " does not match the " + std::to_string(ctx.n) + "-element grid");
    }
    const auto enc = r.get_vector<std::uint8_t>();
    const auto syms = rans_decode(enc, count, model);
    std::vector<quant_t> quant(syms.begin(), syms.end());
    sim::KernelCost cost;
    cost.bytes_read = enc.size();
    cost.bytes_written = count * sizeof(quant_t);
    cost.flops = count * 450;  // serial state chain, like Huffman decode
    cost.parallel_items = count;
    cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    report.add({"rans_decode", ctx.payload_bytes, t.seconds(), cost});
    deliver_symbols(quant, out);
  }

  [[nodiscard]] CodecEstimate estimate(const CodecSignals& sig) const override {
    const std::size_t live = live_symbols(sig.freq);
    const double n = static_cast<double>(sig.n);
    CodecEstimate e;
    // Range-ANS codes at the entropy with no 1-bit floor; the 12-bit
    // quantized probabilities cost a small multiplicative excess, and the
    // final state flush adds 4 bytes.
    e.payload_bits_per_symbol = sig.stats.entropy_bits * 1.01 + 32.0 / std::max(1.0, n);
    // Sparse model table: alphabet u32 + live u32 + live × (sym u16 + freq
    // u16), plus symbol count and payload vector header.
    e.fixed_bytes = 8.0 + 4.0 * static_cast<double>(live) + 8.0 + 8.0;
    e.encode_cost.bytes_read = sig.n * sizeof(quant_t);
    e.encode_cost.bytes_written =
        static_cast<std::uint64_t>(n * e.payload_bits_per_symbol / 8.0);
    e.encode_cost.flops = sig.n * 20;
    e.encode_cost.parallel_items = std::max<std::uint64_t>(1, sig.n);
    e.encode_cost.pattern = sim::AccessPattern::kScattered;
    e.encode_cost.custom_factor = 0.06;
    e.encode_cost.launches = 3;  // mirrors the stage: build + encode + concat
    e.decode_cost.bytes_read = e.encode_cost.bytes_written;
    e.decode_cost.bytes_written = sig.n * sizeof(quant_t);
    e.decode_cost.flops = sig.n * 450;
    e.decode_cost.parallel_items = std::max<std::uint64_t>(1, sig.n);
    e.decode_cost.pattern = sim::AccessPattern::kCoalescedStreaming;
    return e;
  }
};

}  // namespace

std::unique_ptr<LosslessCodec> make_huffman_codec() { return std::make_unique<HuffmanCodec>(); }
std::unique_ptr<LosslessCodec> make_rle_codec() { return std::make_unique<RleCodec>(); }
std::unique_ptr<LosslessCodec> make_rle_vle_codec() { return std::make_unique<RleVleCodec>(); }
std::unique_ptr<LosslessCodec> make_rans_codec() { return std::make_unique<RansCodec>(); }

}  // namespace szp::pipeline

