#include "zfp/zfp.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "core/serialize.hh"
#include "sim/check.hh"
#include "sim/launch.hh"

namespace szp::zfp {

namespace {

constexpr std::uint32_t kMagic = 0x50465A53;  // "SZFP"
constexpr int kFracBits = 25;                 // fixed-point precision per block
constexpr int kPlanes = 30;                   // encoded bit planes (MSB first)
constexpr std::int16_t kEmptyBlock = -32768;  // emax sentinel for all-zero blocks

/// ZFP's forward lifting transform on a stride-s 4-vector (the
/// non-orthogonal integer approximation of the DCT).
void fwd_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  x += w; x >>= 1; w -= x;
  z += y; z >>= 1; y -= z;
  x += z; x >>= 1; z -= x;
  w += y; w >>= 1; y -= w;
  w += y >> 1; y -= w >> 1;
  p[0] = x; p[s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Exact inverse of fwd_lift.
void inv_lift(std::int32_t* p, std::size_t s) {
  std::int32_t x = p[0], y = p[s], z = p[2 * s], w = p[3 * s];
  y += w >> 1; w -= y >> 1;
  y += w; w <<= 1; w -= y;
  z += x; x <<= 1; x -= z;
  y += z; z <<= 1; z -= y;
  w += x; x <<= 1; x -= w;
  p[0] = x; p[s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Two's complement <-> negabinary (sign folded into alternating weights,
/// so magnitude ordering survives bit-plane truncation).
std::uint32_t to_negabinary(std::int32_t i) {
  return (static_cast<std::uint32_t>(i) + 0xaaaaaaaau) ^ 0xaaaaaaaau;
}
std::int32_t from_negabinary(std::uint32_t u) {
  return static_cast<std::int32_t>((u ^ 0xaaaaaaaau) - 0xaaaaaaaau);
}

/// Sequency order: coefficients sorted by total index sum (low-frequency
/// first), ties broken by linear index — the same spirit as ZFP's perm
/// tables.
template <int Rank>
std::array<std::uint8_t, 64> make_order() {
  const int count = Rank == 1 ? 4 : Rank == 2 ? 16 : 64;
  std::array<std::uint8_t, 64> order{};
  std::array<std::pair<int, int>, 64> keyed{};  // (sum, index)
  for (int i = 0; i < count; ++i) {
    const int x = i & 3, y = (i >> 2) & 3, z = (i >> 4) & 3;
    keyed[static_cast<std::size_t>(i)] = {x + y + z, i};
  }
  std::sort(keyed.begin(), keyed.begin() + count);
  for (int i = 0; i < count; ++i) {
    order[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(keyed[static_cast<std::size_t>(i)].second);
  }
  return order;
}

const std::array<std::uint8_t, 64> kOrder1 = make_order<1>();
const std::array<std::uint8_t, 64> kOrder2 = make_order<2>();
const std::array<std::uint8_t, 64> kOrder3 = make_order<3>();

const std::uint8_t* order_for(int rank) {
  return rank == 1 ? kOrder1.data() : rank == 2 ? kOrder2.data() : kOrder3.data();
}

struct BlockGrid {
  std::size_t bx, by, bz;       // blocks per axis
  std::size_t block_elems;      // 4^rank
  std::size_t count() const { return bx * by * bz; }
};

BlockGrid make_grid(const Extents& ext) {
  BlockGrid g{};
  g.bx = sim::div_ceil(ext.nx, 4);
  g.by = ext.rank >= 2 ? sim::div_ceil(ext.ny, 4) : 1;
  g.bz = ext.rank >= 3 ? sim::div_ceil(ext.nz, 4) : 1;
  g.block_elems = std::size_t{1} << (2 * ext.rank);
  return g;
}

/// Fixed bit budget per block, including the 16-bit exponent header.
/// Rounded up to whole bytes so concurrent blocks never share a byte
/// (the encode loop is block-parallel).
std::size_t block_bits(const ZfpConfig& cfg, std::size_t block_elems) {
  const auto bits = static_cast<std::size_t>(
      std::llround(cfg.rate_bits_per_value * static_cast<double>(block_elems)));
  return ((std::max<std::size_t>(bits, 17) + 7) / 8) * 8;
}

/// Gather a (possibly partial) block with edge replication, as ZFP pads.
/// Templated over the (raw or tracking) data view from the checked launch.
/// Lane model (word-mode checking): one virtual thread per block row, the
/// way cuZFP assigns gather threads.  Edge-replicated rows collide only on
/// reads, which the checker treats as benign sharing.
template <typename View>
void gather_block(const View& data, const Extents& ext, std::size_t gx,
                  std::size_t gy, std::size_t gz, float* block) {
  const int rank = ext.rank;
  const std::size_t ny = rank >= 2 ? 4 : 1;
  const std::size_t nz = rank >= 3 ? 4 : 1;
  for (std::size_t lz = 0; lz < nz; ++lz) {
    const std::size_t z = std::min(gz * 4 + lz, ext.nz - 1);
    for (std::size_t ly = 0; ly < ny; ++ly) {
      sim::checked::this_thread(static_cast<std::uint32_t>(lz * ny + ly));
      const std::size_t y = std::min(gy * 4 + ly, ext.ny - 1);
      for (std::size_t lx = 0; lx < 4; ++lx) {
        const std::size_t x = std::min(gx * 4 + lx, ext.nx - 1);
        block[(lz * ny + ly) * 4 + lx] = data[ext.index(z, y, x)];
      }
    }
  }
}

template <typename View>
void scatter_block(const View& data, const Extents& ext, std::size_t gx, std::size_t gy,
                   std::size_t gz, const float* block) {
  const int rank = ext.rank;
  const std::size_t ny = rank >= 2 ? 4 : 1;
  const std::size_t nz = rank >= 3 ? 4 : 1;
  for (std::size_t lz = 0; lz < nz; ++lz) {
    const std::size_t z = gz * 4 + lz;
    if (z >= ext.nz) break;
    for (std::size_t ly = 0; ly < ny; ++ly) {
      // One virtual thread per row; rows land on disjoint output words.
      sim::checked::this_thread(static_cast<std::uint32_t>(lz * ny + ly));
      const std::size_t y = gy * 4 + ly;
      if (y >= ext.ny) break;
      for (std::size_t lx = 0; lx < 4; ++lx) {
        const std::size_t x = gx * 4 + lx;
        if (x >= ext.nx) break;
        data[ext.index(z, y, x)] = block[(lz * ny + ly) * 4 + lx];
      }
    }
  }
}

// Lane model for both transforms: each lift pass assigns one virtual
// thread per independent 4-vector (lane = vector index within the pass),
// with a barrier between passes — the passes genuinely depend on each
// other, so word mode must see them in distinct epochs when the transform
// is ever applied to a registered buffer.
void transform_forward(std::int32_t* v, int rank) {
  namespace chk = sim::checked;
  if (rank == 1) {
    chk::this_thread(0);
    fwd_lift(v, 1);
    chk::barrier();
    return;
  }
  if (rank == 2) {
    for (std::size_t y = 0; y < 4; ++y) {                          // rows
      chk::this_thread(static_cast<std::uint32_t>(y));
      fwd_lift(v + 4 * y, 1);
    }
    chk::barrier();
    for (std::size_t x = 0; x < 4; ++x) {                          // columns
      chk::this_thread(static_cast<std::uint32_t>(x));
      fwd_lift(v + x, 4);
    }
    chk::barrier();
    return;
  }
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) {
      chk::this_thread(static_cast<std::uint32_t>(z * 4 + y));
      fwd_lift(v + 16 * z + 4 * y, 1);
    }
  chk::barrier();
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) {
      chk::this_thread(static_cast<std::uint32_t>(z * 4 + x));
      fwd_lift(v + 16 * z + x, 4);
    }
  chk::barrier();
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) {
      chk::this_thread(static_cast<std::uint32_t>(y * 4 + x));
      fwd_lift(v + 4 * y + x, 16);
    }
  chk::barrier();
}

void transform_inverse(std::int32_t* v, int rank) {
  namespace chk = sim::checked;
  if (rank == 1) {
    chk::this_thread(0);
    inv_lift(v, 1);
    chk::barrier();
    return;
  }
  if (rank == 2) {
    for (std::size_t x = 0; x < 4; ++x) {
      chk::this_thread(static_cast<std::uint32_t>(x));
      inv_lift(v + x, 4);
    }
    chk::barrier();
    for (std::size_t y = 0; y < 4; ++y) {
      chk::this_thread(static_cast<std::uint32_t>(y));
      inv_lift(v + 4 * y, 1);
    }
    chk::barrier();
    return;
  }
  for (std::size_t y = 0; y < 4; ++y)
    for (std::size_t x = 0; x < 4; ++x) {
      chk::this_thread(static_cast<std::uint32_t>(y * 4 + x));
      inv_lift(v + 4 * y + x, 16);
    }
  chk::barrier();
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t x = 0; x < 4; ++x) {
      chk::this_thread(static_cast<std::uint32_t>(z * 4 + x));
      inv_lift(v + 16 * z + x, 4);
    }
  chk::barrier();
  for (std::size_t z = 0; z < 4; ++z)
    for (std::size_t y = 0; y < 4; ++y) {
      chk::this_thread(static_cast<std::uint32_t>(z * 4 + y));
      inv_lift(v + 16 * z + 4 * y, 1);
    }
  chk::barrier();
}

/// Fixed-size per-block bit cursor over the archive payload.
class BlockBits {
 public:
  BlockBits(std::uint8_t* base, std::size_t bit_offset)
      : base_(base), pos_(bit_offset) {}

  void put(unsigned bit) {
    base_[pos_ >> 3] = static_cast<std::uint8_t>(
        base_[pos_ >> 3] | ((bit & 1u) << (7 - (pos_ & 7))));
    ++pos_;
  }
  void put_bits(std::uint32_t value, unsigned n) {
    for (unsigned i = n; i-- > 0;) put((value >> i) & 1u);
  }

 private:
  std::uint8_t* base_;
  std::size_t pos_;
};

class BlockBitsReader {
 public:
  BlockBitsReader(const std::uint8_t* base, std::size_t bit_offset)
      : base_(base), pos_(bit_offset) {}

  [[nodiscard]] unsigned get() {
    const unsigned bit = (base_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1u;
    ++pos_;
    return bit;
  }
  [[nodiscard]] std::uint32_t get_bits(unsigned n) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < n; ++i) v = (v << 1) | get();
    return v;
  }

 private:
  const std::uint8_t* base_;
  std::size_t pos_;
};

}  // namespace

ZfpCompressed zfp_compress(std::span<const float> data, const Extents& ext,
                           const ZfpConfig& cfg) {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("zfp_compress: data must be non-empty and match extents");
  }
  if (cfg.rate_bits_per_value < 1.0 || cfg.rate_bits_per_value > 32.0) {
    throw std::invalid_argument("zfp_compress: rate must be in [1, 32] bits/value");
  }
  const BlockGrid grid = make_grid(ext);
  const std::size_t bits_per_block = block_bits(cfg, grid.block_elems);
  const std::size_t payload_bytes = sim::div_ceil(grid.count() * bits_per_block, 8);

  ByteWriter w;
  w.put(kMagic);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<double>(cfg.rate_bits_per_value);
  std::vector<std::uint8_t> payload(payload_bytes, 0);

  const std::uint8_t* order = order_for(ext.rank);
  const std::size_t ne = grid.block_elems;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for out.cost
  // One 4x4x4 (edge-clamped) tile of the field per block, and one
  // byte-rounded payload slot at the block's linear index — affine in the
  // block coordinates, so both footprints are statically provable.
  const auto bpb8 = static_cast<std::int64_t>(bits_per_block / 8);
  const auto gbx = static_cast<std::int64_t>(grid.bx);
  const auto gby = static_cast<std::int64_t>(grid.by);
  chk::launch_3d("zfp_compress",
                 {static_cast<std::uint32_t>(grid.bx), static_cast<std::uint32_t>(grid.by),
                  static_cast<std::uint32_t>(grid.bz)},
                 chk::bufs(chk::in(data, "data"),
                           chk::out(std::span<std::uint8_t>(payload), "payload")),
                 ctr::contract(
                     ctr::reads_box("data", ctr::bx() * 4, 4, ctr::by() * 4, 4, ctr::bz() * 4, 4,
                                    static_cast<std::int64_t>(ext.nx),
                                    static_cast<std::int64_t>(ext.ny),
                                    static_cast<std::int64_t>(ext.nz)),
                     ctr::writes("payload",
                                 ctr::bx() * bpb8 + ctr::by() * (gbx * bpb8) +
                                     ctr::bz() * (gbx * gby * bpb8),
                                 bpb8)),
                 [&, bits_per_block](std::uint32_t gx, std::uint32_t gy, std::uint32_t gz,
                                     const auto& vdata, const auto& vpayload) {
    const std::size_t b =
        (static_cast<std::size_t>(gz) * grid.by + gy) * grid.bx + gx;

    std::array<float, 64> vals{};
    gather_block(vdata, ext, gx, gy, gz, vals.data());
    chk::barrier();

    // The bitstream emit is inherently serial: thread 0 owns the cursor.
    chk::this_thread(0);
    // bits_per_block is rounded to whole bytes, so each block's reserved
    // byte range is disjoint; claim it before writing through the raw base.
    vpayload.note_write(b * bits_per_block / 8, bits_per_block / 8);
    BlockBits bits(vpayload.data(), b * bits_per_block);

    // Common exponent.
    float vmax = 0.0f;
    for (std::size_t i = 0; i < ne; ++i) vmax = std::max(vmax, std::abs(vals[i]));
    if (vmax == 0.0f) {
      bits.put_bits(static_cast<std::uint16_t>(kEmptyBlock), 16);
      return;
    }
    int emax = 0;
    (void)std::frexp(vmax, &emax);
    bits.put_bits(static_cast<std::uint16_t>(static_cast<std::int16_t>(emax)), 16);

    // Fixed point, transform, sequency order, negabinary.
    const double scale = std::ldexp(1.0, kFracBits - emax);
    std::array<std::int32_t, 64> q{};
    for (std::size_t i = 0; i < ne; ++i) {
      q[i] = static_cast<std::int32_t>(std::lround(static_cast<double>(vals[i]) * scale));
    }
    transform_forward(q.data(), ext.rank);
    chk::this_thread(0);
    std::array<std::uint32_t, 64> nb{};
    for (std::size_t i = 0; i < ne; ++i) nb[i] = to_negabinary(q[order[i]]);

    // Bit planes, MSB first, each prefixed by a zero-plane flag; stop when
    // the budget is spent.
    std::size_t spent = 16;
    for (int plane = kPlanes; plane >= 0 && spent < bits_per_block; --plane) {
      std::uint32_t any = 0;
      for (std::size_t i = 0; i < ne; ++i) any |= (nb[i] >> plane) & 1u;
      bits.put(any);
      ++spent;
      if (any == 0) continue;
      for (std::size_t i = 0; i < ne && spent < bits_per_block; ++i) {
        bits.put((nb[i] >> plane) & 1u);
        ++spent;
      }
    }
  });

  w.put_vector(payload);

  ZfpCompressed out;
  out.bytes = w.take();
  out.ratio = static_cast<double>(data.size_bytes()) / static_cast<double>(out.bytes.size());
  traffic_scope.apply(out.cost);  // contract-derived: field tiles + payload slots
  out.cost.flops = data.size() * 12;  // lifting + negabinary + plane tests
  out.cost.parallel_items = data.size();
  out.cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  out.cost.custom_factor = 0.60;  // cuZFP runs slightly above cuSZ's kernels
  return out;
}

ZfpDecompressed zfp_decompress(std::span<const std::uint8_t> archive) {
  return decode_guard("zfp archive", [&] {
  ByteReader r(archive);
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not an SZFP stream");
  }
  Extents ext;
  ext.rank = r.get<std::uint8_t>();
  if (ext.rank < 1 || ext.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(ext.rank) + " outside [1, 3]");
  }
  ext.nx = r.get<std::uint64_t>();
  ext.ny = r.get<std::uint64_t>();
  ext.nz = r.get<std::uint64_t>();
  if (ext.nx == 0 || ext.ny == 0 || ext.nz == 0 ||
      (ext.rank < 2 && ext.ny != 1) || (ext.rank < 3 && ext.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(ext.nx, ext.ny, &count) ||
      __builtin_mul_overflow(count, ext.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  ZfpConfig cfg;
  cfg.rate_bits_per_value = r.get<double>();
  if (!(cfg.rate_bits_per_value >= 1.0 && cfg.rate_bits_per_value <= 32.0)) {
    // The negated comparison also rejects NaN before it reaches llround.
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rate outside [1, 32] bits/value");
  }
  r.set_segment("payload");
  const auto payload = r.get_vector<std::uint8_t>();

  const BlockGrid grid = make_grid(ext);
  const std::size_t bits_per_block = block_bits(cfg, grid.block_elems);
  // Overflow-safe total-bit budget: a spliced extent must not wrap the
  // multiply and slip past the truncation check below.
  std::uint64_t total_bits = 0;
  if (__builtin_mul_overflow(grid.count(), bits_per_block, &total_bits)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "payload",
                      "block grid overflows the payload bit budget");
  }
  if (payload.size() < sim::div_ceil(total_bits, 8)) {
    throw DecodeError(DecodeErrorKind::kTruncated, "payload",
                      "payload holds " + std::to_string(payload.size()) + " bytes, the " +
                          std::to_string(grid.count()) + "-block grid needs " +
                          std::to_string(sim::div_ceil(total_bits, 8)));
  }

  ZfpDecompressed out;
  out.extents = ext;
  out.data.assign(ext.count(), 0.0f);
  const std::uint8_t* order = order_for(ext.rank);
  const std::size_t ne = grid.block_elems;

  namespace chk = sim::checked;
  namespace ctr = sim::contract;
  sim::traffic::Scope traffic_scope;  // contract-derived volumes for out.cost
  const auto bpb8 = static_cast<std::int64_t>(bits_per_block / 8);
  const auto gbx = static_cast<std::int64_t>(grid.bx);
  const auto gby = static_cast<std::int64_t>(grid.by);
  chk::launch_3d("zfp_decompress",
                 {static_cast<std::uint32_t>(grid.bx), static_cast<std::uint32_t>(grid.by),
                  static_cast<std::uint32_t>(grid.bz)},
                 chk::bufs(chk::in(std::span<const std::uint8_t>(payload), "payload"),
                           chk::out(std::span<float>(out.data), "data")),
                 ctr::contract(
                     ctr::reads("payload",
                                ctr::bx() * bpb8 + ctr::by() * (gbx * bpb8) +
                                    ctr::bz() * (gbx * gby * bpb8),
                                bpb8),
                     ctr::writes_box("data", ctr::bx() * 4, 4, ctr::by() * 4, 4, ctr::bz() * 4, 4,
                                     static_cast<std::int64_t>(ext.nx),
                                     static_cast<std::int64_t>(ext.ny),
                                     static_cast<std::int64_t>(ext.nz))),
                 [&, bits_per_block](std::uint32_t gx, std::uint32_t gy, std::uint32_t gz,
                                     const auto& vpayload, const auto& vdata) {
    const std::size_t b =
        (static_cast<std::size_t>(gz) * grid.by + gy) * grid.bx + gx;

    // Serial bitstream read: thread 0 owns the cursor, rows scatter after
    // the barrier.
    chk::this_thread(0);
    vpayload.note_read(b * bits_per_block / 8, bits_per_block / 8);
    BlockBitsReader bits(vpayload.data(), b * bits_per_block);
    const auto emax = static_cast<std::int16_t>(bits.get_bits(16));
    std::array<float, 64> vals{};
    if (emax != kEmptyBlock) {
      std::array<std::uint32_t, 64> nb{};
      std::size_t spent = 16;
      for (int plane = kPlanes; plane >= 0 && spent < bits_per_block; --plane) {
        const unsigned any = bits.get();
        ++spent;
        if (any == 0) continue;
        for (std::size_t i = 0; i < ne && spent < bits_per_block; ++i) {
          nb[i] |= static_cast<std::uint32_t>(bits.get()) << plane;
          ++spent;
        }
      }
      std::array<std::int32_t, 64> q{};
      for (std::size_t i = 0; i < ne; ++i) q[order[i]] = from_negabinary(nb[i]);
      transform_inverse(q.data(), ext.rank);
      chk::this_thread(0);
      const double scale = std::ldexp(1.0, emax - kFracBits);
      for (std::size_t i = 0; i < ne; ++i) {
        vals[i] = static_cast<float>(static_cast<double>(q[i]) * scale);
      }
    }
    chk::barrier();
    scatter_block(vdata, ext, gx, gy, gz, vals.data());
  });

  traffic_scope.apply(out.cost);  // contract-derived: payload slots + field tiles
  out.cost.flops = out.data.size() * 12;
  out.cost.parallel_items = out.data.size();
  out.cost.pattern = sim::AccessPattern::kCoalescedStreaming;
  out.cost.custom_factor = 0.60;
  return out;
  });
}

}  // namespace szp::zfp
