// szp::zfp — a ZFP-style fixed-rate transform compressor (the cuZFP
// comparator of the paper's related work, §VI).
//
// Faithful to ZFP's algorithm structure (Lindstrom, TVCG'14): the field is
// cut into 4^d blocks; each block is aligned to a common exponent and
// converted to fixed point; a reversible integer lifting transform
// decorrelates each dimension; coefficients are reordered by total
// sequency, mapped to negabinary, and emitted most-significant bit-plane
// first with a per-plane zero flag (a simplified embedded/group-test
// coding).  *Fixed-rate* mode only — every block gets exactly
// `rate_bits_per_value * 4^d` bits — which is precisely the limitation the
// paper cites for cuZFP ("it only supports fixed-rate mode, significantly
// limiting its adoption", §VI): the compression ratio is chosen up front
// and the pointwise error floats.
//
// bench/compare_zfp.cc reproduces the qualitative SZ-vs-ZFP comparison:
// at matched PSNR the prediction-based compressor usually wins on ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hh"
#include "sim/profile.hh"

namespace szp::zfp {

struct ZfpConfig {
  /// Bits per value, the fixed rate.  Ratio is exactly 32/rate for float32.
  /// Must be in [1, 32].
  double rate_bits_per_value = 8.0;
};

struct ZfpCompressed {
  std::vector<std::uint8_t> bytes;
  double ratio = 0.0;
  sim::KernelCost cost;  ///< encode kernel (block-parallel)
};

struct ZfpDecompressed {
  std::vector<float> data;
  Extents extents;
  sim::KernelCost cost;
};

/// Compress at the configured fixed rate.
[[nodiscard]] ZfpCompressed zfp_compress(std::span<const float> data, const Extents& ext,
                                         const ZfpConfig& cfg = {});

/// Decompress a zfp_compress archive.
[[nodiscard]] ZfpDecompressed zfp_decompress(std::span<const std::uint8_t> archive);

}  // namespace szp::zfp
