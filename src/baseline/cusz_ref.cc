#include "baseline/cusz_ref.hh"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/error.hh"
#include "core/huffman/codec.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"
#include "sim/histogram.hh"
#include "sim/sparse.hh"
#include "sim/timer.hh"

namespace szp::baseline {

namespace {
constexpr std::uint32_t kMagic = 0x305A5343;  // "CSZ0"
}

Compressed CuszCompressor::compress(std::span<const float> data, const Extents& ext) const {
  if (data.empty() || data.size() != ext.count()) {
    throw std::invalid_argument("CuszCompressor::compress: data must match extents");
  }
  cfg_.quant.validate();

  Compressed out;
  CompressStats& st = out.stats;
  st.original_bytes = data.size_bytes();
  st.workflow_used = Workflow::kHuffman;

  const ValueRange range = ValueRange::of(data);
  if (!range.finite) {
    throw std::invalid_argument("CuszCompressor::compress: data contains non-finite values");
  }
  // Same strict-bound margin as szp::Compressor (see compressor.cc).
  const double eb_user = cfg_.eb.resolve(range.span());
  const double margin = std::max(eb_user * 1e-6, range.max_abs() * 0x1p-22);
  if (margin >= 0.5 * eb_user) {
    throw std::invalid_argument("CuszCompressor::compress: error bound below float32 precision");
  }
  st.eb_abs = eb_user;
  const double eb_kernel = eb_user - margin;

  sim::Timer t;
  auto lorenzo = lorenzo_construct(data, ext, eb_kernel, cfg_.quant, OutlierScheme::kValue,
                                   ConstructVariant::kBaseline);
  st.pipeline.add({"lorenzo_construct", st.original_bytes, t.seconds(), lorenzo.cost});

  t.reset();
  auto outliers = sim::dense_to_sparse<qdiff_t>(
      std::span<const qdiff_t>(lorenzo.outlier_dense.data(), lorenzo.outlier_dense.size()));
  st.outlier_count = outliers.nnz();
  st.pipeline.add({"gather_outlier", st.original_bytes, t.seconds(),
                   sim::gather_cost(data.size(), sizeof(qdiff_t), outliers.nnz(),
                                    sizeof(std::uint64_t))});

  t.reset();
  const auto freq = sim::device_histogram<quant_t>(
      std::span<const quant_t>(lorenzo.quant.data(), lorenzo.quant.size()),
      cfg_.quant.capacity);
  st.pipeline.add({"histogram", st.original_bytes, t.seconds(),
                   sim::histogram_cost(data.size(), sizeof(quant_t), cfg_.quant.capacity)});

  t.reset();
  const auto book = HuffmanCodebook::build(freq);
  st.pipeline.add({"huffman_book", st.original_bytes, t.seconds(), book.build_cost()});

  t.reset();
  const auto enc = huffman_encode(std::span<const quant_t>(lorenzo.quant.data(), lorenzo.quant.size()),
                                  book, cfg_.huffman_chunk, HuffmanEncVariant::kBaseline);
  st.pipeline.add({"huffman_encode", st.original_bytes, t.seconds(), enc.cost});

  ByteWriter w;
  w.put(kMagic);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(ext.rank));
  w.put<std::uint64_t>(ext.nx);
  w.put<std::uint64_t>(ext.ny);
  w.put<std::uint64_t>(ext.nz);
  w.put<double>(eb_kernel);
  w.put<std::uint32_t>(cfg_.quant.capacity);
  w.put_vector(outliers.indices);
  w.put_vector(outliers.values);
  book.serialize(w);
  w.put<std::uint64_t>(enc.num_symbols);
  w.put<std::uint32_t>(enc.chunk_size);
  w.put_vector(enc.chunk_offsets);
  w.put_vector(enc.payload);

  out.bytes = w.take();
  st.compressed_bytes = out.bytes.size();
  st.ratio = compression_ratio(st.original_bytes, st.compressed_bytes);
  return out;
}

Decompressed CuszCompressor::decompress(std::span<const std::uint8_t> archive) {
  return decode_guard("cusz archive", [&] {
  ByteReader r(archive);
  r.set_segment("header");
  if (r.get<std::uint32_t>() != kMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "header", "not a CSZ0 archive");
  }
  Extents ext;
  ext.rank = r.get<std::uint8_t>();
  ext.nx = r.get<std::uint64_t>();
  ext.ny = r.get<std::uint64_t>();
  ext.nz = r.get<std::uint64_t>();
  if (ext.rank < 1 || ext.rank > 3) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "rank " + std::to_string(ext.rank) + " outside [1, 3]");
  }
  if (ext.nx == 0 || ext.ny == 0 || ext.nz == 0 ||
      (ext.rank < 2 && ext.ny != 1) || (ext.rank < 3 && ext.nz != 1)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "extents inconsistent with the declared rank");
  }
  std::uint64_t count = 0;
  if (__builtin_mul_overflow(ext.nx, ext.ny, &count) ||
      __builtin_mul_overflow(count, ext.nz, &count)) {
    throw DecodeError(DecodeErrorKind::kLengthOverflow, "header",
                      "extents overflow the element count");
  }
  const double eb_abs = r.get<double>();
  if (!(eb_abs > 0.0) || !std::isfinite(eb_abs)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "error bound is not a finite positive value");
  }
  const auto capacity = r.get<std::uint32_t>();
  if (capacity < 2) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "header",
                      "quantizer capacity " + std::to_string(capacity) + " below 2");
  }
  QuantConfig qcfg{capacity};

  sim::SparseVector<qdiff_t> outliers;
  r.set_segment("outliers");
  outliers.indices = r.get_vector<std::uint64_t>();
  outliers.values = r.get_vector<qdiff_t>();
  const std::size_t n = count;
  if (outliers.indices.size() != outliers.values.size()) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                      "index/value stream size mismatch");
  }
  for (const auto idx : outliers.indices) {
    if (idx >= n) {
      throw DecodeError(DecodeErrorKind::kCorruptStream, "outliers",
                        "outlier index " + std::to_string(idx) + " outside the " +
                            std::to_string(n) + "-element grid");
    }
  }

  HuffmanEncoded enc;
  const auto book = HuffmanCodebook::deserialize(r);
  r.set_segment("huffman stream");
  enc.num_symbols = r.get<std::uint64_t>();
  enc.chunk_size = r.get<std::uint32_t>();
  enc.chunk_offsets = r.get_vector<std::uint64_t>();
  enc.payload = r.get_vector<std::uint8_t>();

  const std::size_t payload_bytes = n * sizeof(float);

  Decompressed out;
  out.extents = ext;

  sim::Timer t;
  auto dec = huffman_decode(enc, book);
  out.pipeline.add({"huffman_decode", payload_bytes, t.seconds(), dec.cost});
  if (dec.symbols.size() != n) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "huffman stream",
                      "decoded " + std::to_string(dec.symbols.size()) +
                          " symbols, the grid holds " + std::to_string(n));
  }

  // Scatter value-space outliers into a dense array for the coarse kernel's
  // placeholder branch (cuSZ keeps them separate; the branch is the point).
  t.reset();
  std::vector<qdiff_t> outlier_dense(n, 0);
  sim::scatter_add(outliers, std::span<qdiff_t>(outlier_dense));
  out.pipeline.add({"scatter_outlier", payload_bytes, t.seconds(),
                    sim::scatter_cost(outliers.nnz(), sizeof(qdiff_t), sizeof(std::uint64_t))});

  t.reset();
  out.data.resize(n);
  const auto cost = lorenzo_reconstruct_coarse<float>(
      std::span<const quant_t>(dec.symbols.data(), dec.symbols.size()),
      std::span<const qdiff_t>(outlier_dense.data(), outlier_dense.size()), ext, eb_abs, qcfg,
      std::span<float>(out.data.data(), out.data.size()));
  out.pipeline.add({"lorenzo_reconstruct", payload_bytes, t.seconds(), cost});
  return out;
  });
}

}  // namespace szp::baseline
