// szp::baseline — the cuSZ (PACT'20) reference pipeline the paper compares
// against.
//
// Differences from the cuSZ+ Compressor, matching §II-A/§II-B of the paper:
//   * construction stages chunks through shared memory, 1 item/thread
//     (ConstructVariant::kBaseline);
//   * outliers are stored in prequantized-*value* space with quant-code 0
//     as placeholder (OutlierScheme::kValue);
//   * the only quant-code codec is multi-byte Huffman (Workflow-Huffman);
//     no RLE path, no compressibility awareness;
//   * the Huffman encoder stores a full word per thread
//     (HuffmanEncVariant::kBaseline);
//   * decompression reconstructs coarse-grained: one virtual thread per
//     chunk, serial raster order, divergent outlier branch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/compressor.hh"
#include "core/eb.hh"
#include "core/types.hh"
#include "sim/profile.hh"

namespace szp::baseline {

struct CuszConfig {
  ErrorBound eb = ErrorBound::relative(1e-4);
  QuantConfig quant;
  std::uint32_t huffman_chunk = 4096;
};

/// The cuSZ reference compressor.  Interface mirrors szp::Compressor so the
/// benches can drive both identically.
class CuszCompressor {
 public:
  CuszCompressor() = default;
  explicit CuszCompressor(CuszConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] Compressed compress(std::span<const float> data, const Extents& ext) const;
  [[nodiscard]] static Decompressed decompress(std::span<const std::uint8_t> archive);

 private:
  CuszConfig cfg_{};
};

}  // namespace szp::baseline
