
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cosmology_insitu.cpp" "examples/CMakeFiles/cosmology_insitu.dir/cosmology_insitu.cpp.o" "gcc" "examples/CMakeFiles/cosmology_insitu.dir/cosmology_insitu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/szp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lossless/CMakeFiles/szp_lossless.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/szp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/szp_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
