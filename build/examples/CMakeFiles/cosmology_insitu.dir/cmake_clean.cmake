file(REMOVE_RECURSE
  "CMakeFiles/cosmology_insitu.dir/cosmology_insitu.cpp.o"
  "CMakeFiles/cosmology_insitu.dir/cosmology_insitu.cpp.o.d"
  "cosmology_insitu"
  "cosmology_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmology_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
