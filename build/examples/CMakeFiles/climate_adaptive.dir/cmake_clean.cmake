file(REMOVE_RECURSE
  "CMakeFiles/climate_adaptive.dir/climate_adaptive.cpp.o"
  "CMakeFiles/climate_adaptive.dir/climate_adaptive.cpp.o.d"
  "climate_adaptive"
  "climate_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
