# Empty compiler generated dependencies file for climate_adaptive.
# This may be replaced when dependencies are built.
