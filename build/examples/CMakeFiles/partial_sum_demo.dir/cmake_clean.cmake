file(REMOVE_RECURSE
  "CMakeFiles/partial_sum_demo.dir/partial_sum_demo.cpp.o"
  "CMakeFiles/partial_sum_demo.dir/partial_sum_demo.cpp.o.d"
  "partial_sum_demo"
  "partial_sum_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_sum_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
