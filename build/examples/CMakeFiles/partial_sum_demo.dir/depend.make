# Empty dependencies file for partial_sum_demo.
# This may be replaced when dependencies are built.
