file(REMOVE_RECURSE
  "CMakeFiles/szp_zfp.dir/zfp.cc.o"
  "CMakeFiles/szp_zfp.dir/zfp.cc.o.d"
  "libszp_zfp.a"
  "libszp_zfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_zfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
