# Empty compiler generated dependencies file for szp_zfp.
# This may be replaced when dependencies are built.
