file(REMOVE_RECURSE
  "libszp_zfp.a"
)
