file(REMOVE_RECURSE
  "CMakeFiles/szp_data.dir/catalog.cc.o"
  "CMakeFiles/szp_data.dir/catalog.cc.o.d"
  "CMakeFiles/szp_data.dir/io.cc.o"
  "CMakeFiles/szp_data.dir/io.cc.o.d"
  "CMakeFiles/szp_data.dir/synthetic.cc.o"
  "CMakeFiles/szp_data.dir/synthetic.cc.o.d"
  "libszp_data.a"
  "libszp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
