# Empty compiler generated dependencies file for szp_data.
# This may be replaced when dependencies are built.
