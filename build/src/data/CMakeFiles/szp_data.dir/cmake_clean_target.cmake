file(REMOVE_RECURSE
  "libszp_data.a"
)
