
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis/entropy.cc" "src/core/CMakeFiles/szp_core.dir/analysis/entropy.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/analysis/entropy.cc.o.d"
  "/root/repo/src/core/analysis/madogram.cc" "src/core/CMakeFiles/szp_core.dir/analysis/madogram.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/analysis/madogram.cc.o.d"
  "/root/repo/src/core/analysis/selector.cc" "src/core/CMakeFiles/szp_core.dir/analysis/selector.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/analysis/selector.cc.o.d"
  "/root/repo/src/core/bundle.cc" "src/core/CMakeFiles/szp_core.dir/bundle.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/bundle.cc.o.d"
  "/root/repo/src/core/checksum.cc" "src/core/CMakeFiles/szp_core.dir/checksum.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/checksum.cc.o.d"
  "/root/repo/src/core/compressor.cc" "src/core/CMakeFiles/szp_core.dir/compressor.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/compressor.cc.o.d"
  "/root/repo/src/core/huffman/codebook.cc" "src/core/CMakeFiles/szp_core.dir/huffman/codebook.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/huffman/codebook.cc.o.d"
  "/root/repo/src/core/huffman/codec.cc" "src/core/CMakeFiles/szp_core.dir/huffman/codec.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/huffman/codec.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/szp_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/predictor/interpolation.cc" "src/core/CMakeFiles/szp_core.dir/predictor/interpolation.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/predictor/interpolation.cc.o.d"
  "/root/repo/src/core/predictor/lorenzo_construct.cc" "src/core/CMakeFiles/szp_core.dir/predictor/lorenzo_construct.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/predictor/lorenzo_construct.cc.o.d"
  "/root/repo/src/core/predictor/lorenzo_reconstruct.cc" "src/core/CMakeFiles/szp_core.dir/predictor/lorenzo_reconstruct.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/predictor/lorenzo_reconstruct.cc.o.d"
  "/root/repo/src/core/predictor/regression.cc" "src/core/CMakeFiles/szp_core.dir/predictor/regression.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/predictor/regression.cc.o.d"
  "/root/repo/src/core/rans.cc" "src/core/CMakeFiles/szp_core.dir/rans.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/rans.cc.o.d"
  "/root/repo/src/core/rle/rle.cc" "src/core/CMakeFiles/szp_core.dir/rle/rle.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/rle/rle.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/szp_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/szp_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/szp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
