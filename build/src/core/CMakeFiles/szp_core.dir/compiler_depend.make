# Empty compiler generated dependencies file for szp_core.
# This may be replaced when dependencies are built.
