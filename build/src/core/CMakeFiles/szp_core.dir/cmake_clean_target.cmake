file(REMOVE_RECURSE
  "libszp_core.a"
)
