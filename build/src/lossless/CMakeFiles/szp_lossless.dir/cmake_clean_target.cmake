file(REMOVE_RECURSE
  "libszp_lossless.a"
)
