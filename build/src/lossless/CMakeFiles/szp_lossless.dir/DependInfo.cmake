
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lossless/lz77.cc" "src/lossless/CMakeFiles/szp_lossless.dir/lz77.cc.o" "gcc" "src/lossless/CMakeFiles/szp_lossless.dir/lz77.cc.o.d"
  "/root/repo/src/lossless/lzh.cc" "src/lossless/CMakeFiles/szp_lossless.dir/lzh.cc.o" "gcc" "src/lossless/CMakeFiles/szp_lossless.dir/lzh.cc.o.d"
  "/root/repo/src/lossless/lzr.cc" "src/lossless/CMakeFiles/szp_lossless.dir/lzr.cc.o" "gcc" "src/lossless/CMakeFiles/szp_lossless.dir/lzr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/szp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
