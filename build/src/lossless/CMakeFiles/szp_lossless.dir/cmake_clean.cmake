file(REMOVE_RECURSE
  "CMakeFiles/szp_lossless.dir/lz77.cc.o"
  "CMakeFiles/szp_lossless.dir/lz77.cc.o.d"
  "CMakeFiles/szp_lossless.dir/lzh.cc.o"
  "CMakeFiles/szp_lossless.dir/lzh.cc.o.d"
  "CMakeFiles/szp_lossless.dir/lzr.cc.o"
  "CMakeFiles/szp_lossless.dir/lzr.cc.o.d"
  "libszp_lossless.a"
  "libszp_lossless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_lossless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
