# Empty compiler generated dependencies file for szp_lossless.
# This may be replaced when dependencies are built.
