file(REMOVE_RECURSE
  "CMakeFiles/szp_sim.dir/device.cc.o"
  "CMakeFiles/szp_sim.dir/device.cc.o.d"
  "CMakeFiles/szp_sim.dir/perf_model.cc.o"
  "CMakeFiles/szp_sim.dir/perf_model.cc.o.d"
  "CMakeFiles/szp_sim.dir/profile.cc.o"
  "CMakeFiles/szp_sim.dir/profile.cc.o.d"
  "libszp_sim.a"
  "libszp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
