# Empty compiler generated dependencies file for szp_sim.
# This may be replaced when dependencies are built.
