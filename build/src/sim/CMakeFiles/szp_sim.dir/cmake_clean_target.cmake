file(REMOVE_RECURSE
  "libszp_sim.a"
)
