file(REMOVE_RECURSE
  "CMakeFiles/szp_baseline.dir/cusz_ref.cc.o"
  "CMakeFiles/szp_baseline.dir/cusz_ref.cc.o.d"
  "libszp_baseline.a"
  "libszp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
