# Empty dependencies file for szp_baseline.
# This may be replaced when dependencies are built.
