file(REMOVE_RECURSE
  "libszp_baseline.a"
)
