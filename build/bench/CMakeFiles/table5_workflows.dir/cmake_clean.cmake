file(REMOVE_RECURSE
  "CMakeFiles/table5_workflows.dir/table5_workflows.cc.o"
  "CMakeFiles/table5_workflows.dir/table5_workflows.cc.o.d"
  "table5_workflows"
  "table5_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
