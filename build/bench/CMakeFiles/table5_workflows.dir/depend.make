# Empty dependencies file for table5_workflows.
# This may be replaced when dependencies are built.
