# Empty compiler generated dependencies file for table4_rle_fields.
# This may be replaced when dependencies are built.
