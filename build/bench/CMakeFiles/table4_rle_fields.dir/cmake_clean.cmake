file(REMOVE_RECURSE
  "CMakeFiles/table4_rle_fields.dir/table4_rle_fields.cc.o"
  "CMakeFiles/table4_rle_fields.dir/table4_rle_fields.cc.o.d"
  "table4_rle_fields"
  "table4_rle_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_rle_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
