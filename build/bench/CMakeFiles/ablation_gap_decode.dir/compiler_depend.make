# Empty compiler generated dependencies file for ablation_gap_decode.
# This may be replaced when dependencies are built.
