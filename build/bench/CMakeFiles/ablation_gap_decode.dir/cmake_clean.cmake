file(REMOVE_RECURSE
  "CMakeFiles/ablation_gap_decode.dir/ablation_gap_decode.cc.o"
  "CMakeFiles/ablation_gap_decode.dir/ablation_gap_decode.cc.o.d"
  "ablation_gap_decode"
  "ablation_gap_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gap_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
