# Empty dependencies file for fig2_smoothness.
# This may be replaced when dependencies are built.
