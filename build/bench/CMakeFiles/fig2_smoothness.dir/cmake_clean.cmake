file(REMOVE_RECURSE
  "CMakeFiles/fig2_smoothness.dir/fig2_smoothness.cc.o"
  "CMakeFiles/fig2_smoothness.dir/fig2_smoothness.cc.o.d"
  "fig2_smoothness"
  "fig2_smoothness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_smoothness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
