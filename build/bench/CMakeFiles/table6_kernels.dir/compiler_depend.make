# Empty compiler generated dependencies file for table6_kernels.
# This may be replaced when dependencies are built.
