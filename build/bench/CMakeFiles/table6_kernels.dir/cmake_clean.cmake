file(REMOVE_RECURSE
  "CMakeFiles/table6_kernels.dir/table6_kernels.cc.o"
  "CMakeFiles/table6_kernels.dir/table6_kernels.cc.o.d"
  "table6_kernels"
  "table6_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
