file(REMOVE_RECURSE
  "CMakeFiles/table2_reconstruct.dir/table2_reconstruct.cc.o"
  "CMakeFiles/table2_reconstruct.dir/table2_reconstruct.cc.o.d"
  "table2_reconstruct"
  "table2_reconstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_reconstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
