# Empty compiler generated dependencies file for table2_reconstruct.
# This may be replaced when dependencies are built.
