# Empty compiler generated dependencies file for compare_zfp.
# This may be replaced when dependencies are built.
