file(REMOVE_RECURSE
  "CMakeFiles/compare_zfp.dir/compare_zfp.cc.o"
  "CMakeFiles/compare_zfp.dir/compare_zfp.cc.o.d"
  "compare_zfp"
  "compare_zfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_zfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
