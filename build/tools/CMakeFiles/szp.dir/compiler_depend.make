# Empty compiler generated dependencies file for szp.
# This may be replaced when dependencies are built.
