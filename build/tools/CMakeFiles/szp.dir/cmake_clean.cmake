file(REMOVE_RECURSE
  "CMakeFiles/szp.dir/szp_main.cc.o"
  "CMakeFiles/szp.dir/szp_main.cc.o.d"
  "szp"
  "szp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
