# Empty dependencies file for szp_cli.
# This may be replaced when dependencies are built.
