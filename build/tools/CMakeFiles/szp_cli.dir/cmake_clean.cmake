file(REMOVE_RECURSE
  "CMakeFiles/szp_cli.dir/cli.cc.o"
  "CMakeFiles/szp_cli.dir/cli.cc.o.d"
  "libszp_cli.a"
  "libszp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
