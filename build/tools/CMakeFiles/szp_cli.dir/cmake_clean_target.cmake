file(REMOVE_RECURSE
  "libszp_cli.a"
)
