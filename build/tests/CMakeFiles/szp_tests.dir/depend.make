# Empty dependencies file for szp_tests.
# This may be replaced when dependencies are built.
