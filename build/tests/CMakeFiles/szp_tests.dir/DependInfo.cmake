
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/szp_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_baseline.cc" "tests/CMakeFiles/szp_tests.dir/test_baseline.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_baseline.cc.o.d"
  "/root/repo/tests/test_bundle.cc" "tests/CMakeFiles/szp_tests.dir/test_bundle.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_bundle.cc.o.d"
  "/root/repo/tests/test_checksum.cc" "tests/CMakeFiles/szp_tests.dir/test_checksum.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_checksum.cc.o.d"
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/szp_tests.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_cli.cc.o.d"
  "/root/repo/tests/test_compressor.cc" "tests/CMakeFiles/szp_tests.dir/test_compressor.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_compressor.cc.o.d"
  "/root/repo/tests/test_data.cc" "tests/CMakeFiles/szp_tests.dir/test_data.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_data.cc.o.d"
  "/root/repo/tests/test_double.cc" "tests/CMakeFiles/szp_tests.dir/test_double.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_double.cc.o.d"
  "/root/repo/tests/test_huffman.cc" "tests/CMakeFiles/szp_tests.dir/test_huffman.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_huffman.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/szp_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_interpolation.cc" "tests/CMakeFiles/szp_tests.dir/test_interpolation.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_interpolation.cc.o.d"
  "/root/repo/tests/test_lorenzo.cc" "tests/CMakeFiles/szp_tests.dir/test_lorenzo.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_lorenzo.cc.o.d"
  "/root/repo/tests/test_lzh.cc" "tests/CMakeFiles/szp_tests.dir/test_lzh.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_lzh.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/szp_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_perf_model.cc" "tests/CMakeFiles/szp_tests.dir/test_perf_model.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_perf_model.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/szp_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_rans.cc" "tests/CMakeFiles/szp_tests.dir/test_rans.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_rans.cc.o.d"
  "/root/repo/tests/test_regression.cc" "tests/CMakeFiles/szp_tests.dir/test_regression.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_regression.cc.o.d"
  "/root/repo/tests/test_rle.cc" "tests/CMakeFiles/szp_tests.dir/test_rle.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_rle.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/szp_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_sim_primitives.cc" "tests/CMakeFiles/szp_tests.dir/test_sim_primitives.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_sim_primitives.cc.o.d"
  "/root/repo/tests/test_sim_scan.cc" "tests/CMakeFiles/szp_tests.dir/test_sim_scan.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_sim_scan.cc.o.d"
  "/root/repo/tests/test_streaming.cc" "tests/CMakeFiles/szp_tests.dir/test_streaming.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_streaming.cc.o.d"
  "/root/repo/tests/test_types.cc" "tests/CMakeFiles/szp_tests.dir/test_types.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_types.cc.o.d"
  "/root/repo/tests/test_zfp.cc" "tests/CMakeFiles/szp_tests.dir/test_zfp.cc.o" "gcc" "tests/CMakeFiles/szp_tests.dir/test_zfp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/szp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lossless/CMakeFiles/szp_lossless.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/szp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/szp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/zfp/CMakeFiles/szp_zfp.dir/DependInfo.cmake"
  "/root/repo/build/tools/CMakeFiles/szp_cli.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
