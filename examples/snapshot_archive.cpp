// Snapshot-archive scenario: pack a multi-variable simulation snapshot into
// one bundle, then read back selectively — one variable, or one slab of one
// variable — without touching the rest.  This is the post-hoc-analysis
// access pattern the paper's block-independent design enables (§II-A:
// "This design favors coarse-grained decompression").
//
//   ./examples/snapshot_archive [axis_scale]
#include <cstdio>
#include <cstdlib>

#include "core/bundle.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"
#include "core/streaming.hh"
#include "data/catalog.hh"
#include "data/synthetic.hh"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;

  // 1. "Simulation output": a handful of Hurricane-ISABEL-like variables.
  const auto ds = szp::data::make_dataset("Hurricane", scale);
  const std::vector<std::string> variables{"CLOUDf48", "Pf48", "Uf48", "Vf48", "TCf48"};

  // 2. Compress each variable as a streaming container (so slabs remain
  //    independently accessible) and pack everything into one bundle.
  szp::StreamingConfig scfg;
  scfg.base.eb = szp::ErrorBound::relative(1e-3);
  scfg.base.workflow = szp::Workflow::kAuto;
  scfg.max_slab_elems = std::size_t{1} << 18;
  const szp::StreamingCompressor compressor(scfg);

  szp::Bundle bundle;
  std::size_t raw_bytes = 0;
  for (const auto& name : variables) {
    const auto& f = szp::data::find_field(ds, name);
    const auto values = szp::data::generate_field(f.spec);
    raw_bytes += values.size() * sizeof(float);
    auto c = compressor.compress(values, f.spec.extents);
    std::printf("  packed %-10s %6.2f MB -> %7.1f KB (%6.2fx, %zu slabs)\n", name.c_str(),
                static_cast<double>(values.size() * 4) / 1e6,
                static_cast<double>(c.bytes.size()) / 1e3, c.stats.ratio,
                c.stats.slabs.size());
    bundle.add(name, std::move(c.bytes));
  }

  const auto blob = bundle.serialize();
  std::printf("\nsnapshot bundle: %zu variables, %.1f MB raw -> %.2f MB (%.2fx)\n",
              bundle.size(), static_cast<double>(raw_bytes) / 1e6,
              static_cast<double>(blob.size()) / 1e6,
              static_cast<double>(raw_bytes) / static_cast<double>(blob.size()));

  // 3. Post-hoc analysis, months later: open the blob, list what's inside.
  const auto opened = szp::Bundle::deserialize(blob);
  std::printf("\ncontents:\n");
  for (const auto& e : opened.entries()) {
    std::printf("  %-10s %8zu bytes\n", e.name.c_str(), e.compressed_bytes);
  }

  // 4. Extract a single variable in full...
  {
    const auto full = szp::StreamingCompressor::decompress(opened.archive("Uf48"));
    const auto& f = szp::data::find_field(ds, "Uf48");
    const auto original = szp::data::generate_field(f.spec);
    const auto m = szp::compare_fields(original, full.data);
    std::printf("\nfull read of Uf48: %zu values, max error %.3g (PSNR %.1f dB)\n",
                full.data.size(), m.max_abs_error, m.psnr_db);
  }

  // 5. ...and just one slab of another (partial access: only that slab's
  //    bytes are decoded).
  {
    const auto& archive = opened.archive("CLOUDf48");
    const auto slabs = szp::StreamingCompressor::slab_count(archive);
    szp::SlabInfo info;
    const auto slab = szp::StreamingCompressor::decompress_slab(archive, slabs / 2, &info);
    std::printf("partial read of CLOUDf48: slab %zu/%zu, %zu values at offset %zu\n",
                slabs / 2, slabs, slab.data.size(), info.offset);
  }

  std::printf("\ndone — every access verified against the same archive blob.\n");
  return 0;
}
