// Climate-archive scenario: compress a batch of CESM-ATM-like 2-D fields
// with the compressibility-aware adaptive workflow (the paper's §III).
//
// Climate model output mixes very smooth fields (radiative fluxes, aerosol
// optical depths) with rough ones (surface pressure, wind stress).  A fixed
// Huffman workflow caps every float field at 32x; the selector routes the
// smooth fields to RLE+VLE and keeps Huffman for the rest — per field, from
// the histogram alone, with no trial compression.
//
//   ./examples/climate_adaptive [axis_scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "data/catalog.hh"
#include "data/synthetic.hh"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const auto ds = szp::data::make_dataset("CESM-ATM", scale);

  std::printf("CESM-ATM-like archive, %zu fields, rel-eb 1e-2, adaptive workflow\n\n",
              ds.fields.size());
  std::printf("%-12s %10s %10s %9s %8s   %s\n", "field", "<b> est", "workflow", "ratio",
              "PSNR", "vs fixed-Huffman");
  for (int i = 0; i < 78; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);

  std::size_t total_in = 0, total_out = 0, total_fixed = 0;
  for (const auto& field : ds.fields) {
    const auto values = szp::data::generate_field(field.spec);

    szp::CompressConfig cfg;
    cfg.eb = szp::ErrorBound::relative(1e-2);
    cfg.workflow = szp::Workflow::kAuto;
    const auto adaptive = szp::Compressor(cfg).compress(values, field.spec.extents);

    cfg.workflow = szp::Workflow::kHuffman;
    const auto fixed = szp::Compressor(cfg).compress(values, field.spec.extents);

    const auto restored = szp::Compressor::decompress(adaptive.bytes);
    const auto m = szp::compare_fields(values, restored.data);

    total_in += adaptive.stats.original_bytes;
    total_out += adaptive.stats.compressed_bytes;
    total_fixed += fixed.stats.compressed_bytes;

    std::printf("%-12s %10.3f %10s %8.2fx %7.1fdB   %+6.1f%%\n", field.spec.name.c_str(),
                adaptive.stats.decision.est_avg_bits,
                adaptive.stats.workflow_used == szp::Workflow::kHuffman ? "Huffman" : "RLE+VLE",
                adaptive.stats.ratio, m.psnr_db,
                100.0 * (adaptive.stats.ratio / fixed.stats.ratio - 1.0));
  }
  for (int i = 0; i < 78; ++i) std::fputc('-', stdout);
  std::printf("\narchive total: %.1f MB -> %.2f MB adaptive (%.2fx)  vs  %.2f MB fixed (%.2fx)\n",
              static_cast<double>(total_in) / 1e6, static_cast<double>(total_out) / 1e6,
              static_cast<double>(total_in) / static_cast<double>(total_out),
              static_cast<double>(total_fixed) / 1e6,
              static_cast<double>(total_in) / static_cast<double>(total_fixed));
  return 0;
}
