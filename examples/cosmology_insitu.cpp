// In-situ cosmology checkpoint scenario (the paper's motivating HACC/Nyx
// use case, §I): a simulation emits snapshots every few timesteps; the
// compressor must keep up with the data-production rate, so decompression
// throughput matters as much as ratio (checkpoint *restart* reads
// everything back).
//
// This example streams a sequence of snapshot blocks through the
// compressor, tracks sustained host throughput and the roofline-modeled
// V100/A100 projection, and compares restart time between cuSZ+'s
// partial-sum reconstruction and the cuSZ coarse baseline.
//
//   ./examples/cosmology_insitu [num_snapshots] [block_elems]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/cusz_ref.hh"
#include "core/compressor.hh"
#include "core/metrics.hh"
#include "data/synthetic.hh"
#include "sim/perf_model.hh"
#include "sim/timer.hh"

int main(int argc, char** argv) {
  const int snapshots = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t side = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 128;
  const szp::Extents ext = szp::Extents::d3(side, side, side);

  szp::CompressConfig cfg;
  cfg.eb = szp::ErrorBound::relative(1e-3);
  cfg.workflow = szp::Workflow::kAuto;
  const szp::Compressor compressor(cfg);

  std::printf("in-situ pipeline: %d snapshots of %zu^3 baryon-density blocks, rel-eb 1e-3\n\n",
              snapshots, side);

  std::size_t raw_total = 0, stored_total = 0;
  double compress_seconds = 0.0, restart_fine = 0.0, restart_coarse = 0.0;
  std::vector<std::vector<std::uint8_t>> archives;

  for (int t = 0; t < snapshots; ++t) {
    // Each timestep's field evolves: reseed per snapshot, densifying
    // structure over time (impulse density grows as haloes collapse).
    szp::data::FieldSpec spec;
    spec.dataset = "nyx-run";
    spec.name = "baryon_density_t" + std::to_string(t);
    spec.extents = ext;
    spec.step_rel = 2e-4;
    spec.impulse_density = 0.004 + 0.002 * t;
    spec.plateau_fraction = 0.35;
    const auto block = szp::data::generate_field(spec);

    szp::sim::Timer timer;
    auto compressed = compressor.compress(block, ext);
    compress_seconds += timer.seconds();

    raw_total += compressed.stats.original_bytes;
    stored_total += compressed.stats.compressed_bytes;
    std::printf("  snapshot %d: ratio %7.2fx, workflow %-8s, modeled compress V100 %.1f GB/s\n",
                t, compressed.stats.ratio,
                compressed.stats.workflow_used == szp::Workflow::kHuffman ? "Huffman" : "RLE+VLE",
                szp::sim::modeled_pipeline_gbps(szp::sim::v100(), compressed.stats.pipeline,
                                                compressed.stats.original_bytes));
    archives.push_back(std::move(compressed.bytes));

    // Restart-path timing: decompress with both reconstruction strategies.
    timer.reset();
    auto fine = szp::Compressor::decompress(archives.back());
    restart_fine += timer.seconds();

    // Baseline comparison on the same data.
    szp::baseline::CuszConfig bcfg;
    bcfg.eb = szp::ErrorBound::relative(1e-3);
    const auto base = szp::baseline::CuszCompressor(bcfg).compress(block, ext);
    timer.reset();
    auto coarse = szp::baseline::CuszCompressor::decompress(base.bytes);
    restart_coarse += timer.seconds();

    const auto m = szp::compare_fields(block, fine.data);
    if (m.max_abs_error >= compressed.stats.eb_abs) {
      std::fprintf(stderr, "ERROR: snapshot %d violated the error bound\n", t);
      return 1;
    }
  }

  const double raw_mb = static_cast<double>(raw_total) / 1e6;
  std::printf("\ncampaign: %.0f MB raw -> %.1f MB stored (%.2fx), host compress %.1f MB/s\n",
              raw_mb, static_cast<double>(stored_total) / 1e6,
              static_cast<double>(raw_total) / static_cast<double>(stored_total),
              raw_mb / compress_seconds);
  std::printf("restart (decompress all snapshots): fine-grained %.2fs vs coarse baseline %.2fs "
              "(%.2fx host speedup)\n",
              restart_fine, restart_coarse, restart_coarse / restart_fine);
  std::printf("every snapshot honored the %.0e relative error bound.\n", 1e-3);
  return 0;
}
