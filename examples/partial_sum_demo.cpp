// Fig 3 companion: a visual walk-through of the paper's partial-sum
// theorem — first-order Lorenzo reconstruction == N-dimensional inclusive
// prefix sum — on a small 2-D example, printed step by step.
//
//   ./examples/partial_sum_demo
#include <cstdio>
#include <vector>

#include "core/predictor/lorenzo.hh"

namespace {

void print_grid(const char* label, const std::vector<szp::qdiff_t>& g, std::size_t w,
                std::size_t h) {
  std::printf("%s\n", label);
  for (std::size_t y = 0; y < h; ++y) {
    std::printf("    ");
    for (std::size_t x = 0; x < w; ++x) std::printf("%5d", g[y * w + x]);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  constexpr std::size_t W = 6, H = 4;
  const szp::Extents ext = szp::Extents::d2(H, W);

  // A toy prequantized field (integers, as after Algorithm 1's prequant).
  const std::vector<szp::qdiff_t> field{
      3, 3, 4, 4, 5, 5,
      3, 4, 4, 5, 5, 6,
      4, 4, 5, 5, 6, 6,
      4, 5, 5, 6, 6, 7,
  };
  print_grid("prequantized field d°:", field, W, H);

  // Compression side: residuals δ = d° − lorenzo(d°), zero boundary.
  std::vector<szp::qdiff_t> resid(W * H);
  for (std::size_t y = 0; y < H; ++y) {
    for (std::size_t x = 0; x < W; ++x) {
      const auto at = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> szp::qdiff_t {
        return (yy < 0 || xx < 0) ? 0 : field[static_cast<std::size_t>(yy) * W + static_cast<std::size_t>(xx)];
      };
      const auto yi = static_cast<std::ptrdiff_t>(y);
      const auto xi = static_cast<std::ptrdiff_t>(x);
      resid[y * W + x] =
          field[y * W + x] - (at(yi - 1, xi) + at(yi, xi - 1) - at(yi - 1, xi - 1));
    }
  }
  print_grid("\nLorenzo residuals q' (what actually gets encoded):", resid, W, H);

  // Decompression side, the paper's two 1-D passes.
  std::vector<szp::qdiff_t> pass_x = resid;
  for (std::size_t y = 0; y < H; ++y) {
    for (std::size_t x = 1; x < W; ++x) pass_x[y * W + x] += pass_x[y * W + x - 1];
  }
  print_grid("\nafter x-direction inclusive partial sum:", pass_x, W, H);

  std::vector<szp::qdiff_t> pass_xy = pass_x;
  for (std::size_t x = 0; x < W; ++x) {
    for (std::size_t y = 1; y < H; ++y) pass_xy[y * W + x] += pass_xy[(y - 1) * W + x];
  }
  print_grid("\nafter y-direction inclusive partial sum (reconstructed d°):", pass_xy, W, H);

  if (pass_xy != field) {
    std::fprintf(stderr, "ERROR: partial sums did not reproduce the field!\n");
    return 1;
  }
  std::printf("\npartial sums reproduce d° exactly — and each pass is embarrassingly\n"
              "parallel across rows/columns, unlike the serial raster-order Lorenzo\n"
              "reconstruction it replaces.\n");

  // Cross-check against the production kernel.
  std::vector<szp::qdiff_t> qprime = resid;
  std::vector<float> out(W * H);
  szp::lorenzo_reconstruct_fused(qprime, ext, 0.5, out, {});  // 2eb = 1
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] != static_cast<float>(field[i])) {
      std::fprintf(stderr, "ERROR: kernel mismatch at %zu\n", i);
      return 1;
    }
  }
  std::printf("production kernel (lorenzo_reconstruct_fused) agrees.\n");
  return 0;
}
