// Quickstart: compress a 3-D field with an error bound, decompress it, and
// verify the bound — the 60-second tour of the szp public API.
//
//   ./examples/quickstart [rel_eb]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/compressor.hh"
#include "core/metrics.hh"
#include "data/synthetic.hh"

int main(int argc, char** argv) {
  const double rel_eb = argc > 1 ? std::atof(argv[1]) : 1e-3;

  // 1. Get a field.  Here: a synthetic 128x128x128 "hydrodynamics" block;
  //    in your application this is your simulation output.
  szp::data::FieldSpec spec;
  spec.dataset = "quickstart";
  spec.name = "density";
  spec.extents = szp::Extents::d3(128, 128, 128);
  spec.step_rel = 5e-4;
  spec.impulse_density = 0.01;
  const std::vector<float> field = szp::data::generate_field(spec);

  // 2. Configure: a value-range-relative error bound, automatic workflow
  //    selection (Huffman vs RLE, decided from the quant-code histogram).
  szp::CompressConfig cfg;
  cfg.eb = szp::ErrorBound::relative(rel_eb);
  cfg.workflow = szp::Workflow::kAuto;

  // 3. Compress.
  const szp::Compressor compressor(cfg);
  const auto compressed = compressor.compress(field, spec.extents);

  std::printf("compressed %zu MB -> %zu KB  (ratio %.2fx)\n",
              field.size() * sizeof(float) / (1u << 20), compressed.bytes.size() >> 10,
              compressed.stats.ratio);
  std::printf("workflow: %s (selector estimated <b> = %.3f bits/symbol, p1 = %.3f)\n",
              compressed.stats.workflow_used == szp::Workflow::kHuffman ? "Huffman" : "RLE+VLE",
              compressed.stats.decision.est_avg_bits, compressed.stats.decision.stats.p1);
  std::printf("outliers: %zu of %zu values (%.4f%%)\n", compressed.stats.outlier_count,
              field.size(),
              100.0 * static_cast<double>(compressed.stats.outlier_count) /
                  static_cast<double>(field.size()));

  // 4. Decompress (the archive is self-describing) and verify the bound.
  const auto restored = szp::Compressor::decompress(compressed.bytes);
  const auto metrics = szp::compare_fields(field, restored.data);
  std::printf("max |error| = %.3g  (bound %.3g)  PSNR = %.2f dB\n", metrics.max_abs_error,
              compressed.stats.eb_abs, metrics.psnr_db);

  if (metrics.max_abs_error >= compressed.stats.eb_abs) {
    std::fprintf(stderr, "ERROR: error bound violated!\n");
    return 1;
  }
  std::printf("error bound honored.\n");
  return 0;
}
