// Reproduces Table VII: sub-procedure throughput breakdown of the default
// cuSZ+ compression workflow (Lorenzo + multi-byte VLE) at rel-eb 1e-4 on
// all seven datasets, modeled on V100 and A100 with the A100 advantage.
//
// Expected shape (paper Table VII): Lorenzo construct/reconstruct and
// scatter scale ~1.5-2.2x from V100 to A100 (memory bound); Huffman
// encode/decode and the small-field cases (CESM at 24.7 MB) scale poorly;
// overall compression improves ~1.1-2.0x, decompression ~0.8-1.5x.
#include "bench/bench_util.hh"

namespace {

using namespace szp;
using namespace szp::bench;

constexpr const char* kCompressStages[] = {"lorenzo_construct", "gather_outlier", "histogram",
                                           "huffman_encode"};
constexpr const char* kDecompressStages[] = {"huffman_decode", "scatter_outlier",
                                             "lorenzo_reconstruct"};

}  // namespace

int main() {
  title("Table VII — cuSZ+ default-workflow breakdown at rel-eb 1e-4 (GB/s)",
        "roofline-modeled V100 and A100 throughput per sub-procedure; adv = A100/V100 "
        "(paper: construct 1.5-2.2x, Huffman ~1.1-3.0x, overall compress 1.15-2.0x)");

  const std::vector<std::pair<std::string, double>> plan{
      {"HACC", 0.45},   {"CESM-ATM", 0.5}, {"Hurricane", 0.4}, {"Nyx", 0.3},
      {"RTM", 0.4},     {"Miranda", 0.35}, {"QMCPACK", 0.22},
  };

  for (const auto& [dataset, scale] : plan) {
    const auto f = load_first_field(dataset, scale);

    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    const auto d = Compressor::decompress(c.bytes);

    const auto paper_mb =
        static_cast<double>(paper_field_elems(dataset)) * sizeof(float) / 1e6;
    println("%-10s  field %-24s  %.1f MB here, %.1f MB modeled  (CR %.2fx)", dataset.c_str(),
            f.info.spec.name.c_str(), f.mb(), paper_mb, c.stats.ratio);
    println("  %-22s | %8s | %8s %8s %6s", "stage", "host", "V100*", "A100*", "adv");
    rule();
    // Modeled columns evaluate at the paper's full field size.
    const auto print_stage = [&](const sim::StageReport& s) {
      const auto scaled = at_paper_scale(s, f);
      const double v = modeled_gbps(sim::v100(), scaled);
      const double a = modeled_gbps(sim::a100(), scaled);
      println("  %-22s | %8.1f | %8.1f %8.1f %5.2fx", s.name.c_str(),
              s.cpu_throughput_gbps(), v, a, a / v);
    };
    for (const char* stage : kCompressStages) print_stage(*c.stats.pipeline.find(stage));
    {
      const double host =
          static_cast<double>(c.stats.original_bytes) / c.stats.pipeline.total_cpu_seconds() / 1e9;
      const auto scaled = pipeline_at_paper_scale(c.stats.pipeline, f);
      const auto payload = static_cast<std::uint64_t>(paper_mb * 1e6);
      const double v = modeled_pipeline_gbps(sim::v100(), scaled, payload);
      const double a = modeled_pipeline_gbps(sim::a100(), scaled, payload);
      println("  %-22s | %8.1f | %8.1f %8.1f %5.2fx", "overall, compress", host, v, a, a / v);
    }
    for (const char* stage : kDecompressStages) print_stage(*d.pipeline.find(stage));
    {
      const double host =
          static_cast<double>(f.bytes()) / d.pipeline.total_cpu_seconds() / 1e9;
      const auto scaled = pipeline_at_paper_scale(d.pipeline, f);
      const auto payload = static_cast<std::uint64_t>(paper_mb * 1e6);
      const double v = modeled_pipeline_gbps(sim::v100(), scaled, payload);
      const double a = modeled_pipeline_gbps(sim::a100(), scaled, payload);
      println("  %-22s | %8.1f | %8.1f %8.1f %5.2fx", "overall, decompress", host, v, a, a / v);
    }
    rule();
  }

  println("Note: the huffman_book stage (single-thread tree build) is folded into overall");
  println("compression time; it is the latency bottleneck the paper notes for small fields.");
  return 0;
}
