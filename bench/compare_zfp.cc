// Comparator study — CUSZ+ (error-bounded, prediction-based) vs the
// ZFP-style fixed-rate transform compressor (cuZFP stand-in), the
// comparison the paper's related-work section draws (§VI).
//
// Method: rate-distortion points.  For each field, cuSZ+ runs at rel-eb
// 1e-2/1e-3/1e-4 (auto workflow) and zfp at fixed rates 2/4/8/16
// bits/value; each point reports PSNR and CR.  Expected shape: at matched
// PSNR, cuSZ+ posts the higher ratio on these prediction-friendly fields,
// while zfp's ratio is data-independent (its fixed-rate limitation) and its
// modeled kernel throughput is somewhat higher.
#include "bench/bench_util.hh"
#include "core/metrics.hh"
#include "zfp/zfp.hh"

namespace {

using namespace szp;
using namespace szp::bench;

void run_case(const char* label, const BenchField& f) {
  println("%s  (%.1f MB)", label, f.mb());
  println("  %-26s | %8s %9s", "config", "CR", "PSNR dB");
  rule();
  for (const double eb : {1e-2, 1e-3, 1e-4}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(eb);
    cfg.workflow = Workflow::kAuto;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    const auto d = Compressor::decompress(c.bytes);
    const auto m = compare_fields(f.values, d.data);
    char name[64];
    std::snprintf(name, sizeof name, "cuSZ+ rel-eb %.0e", eb);
    println("  %-26s | %8.2f %9.2f", name, c.stats.ratio, m.psnr_db);
  }
  for (const double bits : {2.0, 4.0, 8.0, 16.0}) {
    zfp::ZfpConfig zcfg;
    zcfg.rate_bits_per_value = bits;
    const auto c = zfp::zfp_compress(f.values, f.extents(), zcfg);
    const auto d = zfp::zfp_decompress(c.bytes);
    const auto m = compare_fields(f.values, d.data);
    char name[64];
    std::snprintf(name, sizeof name, "zfp fixed-rate %g bits", bits);
    println("  %-26s | %8.2f %9.2f", name, c.ratio, m.psnr_db);
  }
  rule();
}

}  // namespace

int main() {
  title("cuSZ+ vs ZFP-style fixed rate — rate-distortion comparison",
        "the paper's §VI contrast: error-bounded prediction vs fixed-rate transform coding");

  run_case("CESM FSDSC (2D)", load_field("CESM-ATM", "FSDSC", 0.25));
  run_case("Nyx baryon_density (3D)", load_field("Nyx", "baryon_density", 0.25));
  run_case("HACC vx (1D)", load_field("HACC", "vx", 0.2));

  println("Reading guide: pick a PSNR row from the zfp block and find the cuSZ+ row with");
  println("comparable PSNR — the cuSZ+ CR is typically a multiple of zfp's at that quality,");
  println("and, unlike fixed-rate mode, cuSZ+ guarantees the pointwise bound a priori.");
  return 0;
}
