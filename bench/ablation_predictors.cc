// Ablation — predictor choice (DESIGN.md §6 + paper §VII future work):
// first-order Lorenzo (dual-quant, partial-sum reconstruction) vs per-chunk
// linear regression (SZ2-style, pointwise reconstruction), across the
// catalog datasets and error bounds.
//
// Expected shape: Lorenzo wins on compression ratio for most fields (its
// residuals are second differences, smaller than plane-fit residuals on
// locally curved data), which is why the paper keeps it as the default
// (§II-B.3); regression's reconstruction kernel models slightly faster than
// the partial-sum kernel since it needs no scan passes.
#include "bench/bench_util.hh"

namespace {

using namespace szp;
using namespace szp::bench;

void run_case(const char* label, const BenchField& f, double eb) {
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(eb);
  cfg.workflow = Workflow::kHuffman;

  cfg.predictor = PredictorKind::kLorenzo;
  const auto lor = Compressor(cfg).compress(f.values, f.extents());
  const auto lor_dec = Compressor::decompress(lor.bytes);

  cfg.predictor = PredictorKind::kRegression;
  const auto reg = Compressor(cfg).compress(f.values, f.extents());
  const auto reg_dec = Compressor::decompress(reg.bytes);

  cfg.predictor = PredictorKind::kInterpolation;
  const auto itp = Compressor(cfg).compress(f.values, f.extents());
  const auto itp_dec = Compressor::decompress(itp.bytes);

  const auto recon_gbps = [&](const Decompressed& d, const char* stage) {
    return modeled_gbps(sim::v100(), at_paper_scale(*d.pipeline.find(stage), f));
  };
  println("%-22s %-6.0e | %9.2f %9.2f %9.2f | %9.1f %9.1f %9.1f", label, eb,
          lor.stats.ratio, reg.stats.ratio, itp.stats.ratio,
          recon_gbps(lor_dec, "lorenzo_reconstruct"),
          recon_gbps(reg_dec, "regression_reconstruct"),
          recon_gbps(itp_dec, "interpolation_reconstruct"));
}

}  // namespace

int main() {
  title("Ablation — Lorenzo vs linear-regression vs interpolation predictors",
        "CR of Workflow-Huffman under each predictor; modeled V100 reconstruction GB/s; "
        "interpolation is SZ3-style (paper ref [19])");

  println("%-22s %-6s | %9s %9s %9s | %9s %9s %9s", "field", "rel-eb", "CR(Lor)", "CR(Reg)",
          "CR(Itp)", "rec-Lor", "rec-Reg", "rec-Itp");
  rule();
  for (const double eb : {1e-2, 1e-4}) {
    run_case("HACC vx", load_field("HACC", "vx", 0.25), eb);
    run_case("CESM FSDSC", load_field("CESM-ATM", "FSDSC", 0.25), eb);
    run_case("Nyx baryon_density", load_field("Nyx", "baryon_density", 0.25), eb);
    run_case("Miranda density", load_field("Miranda", "density", 0.3), eb);
    rule();
  }
  println("Lorenzo's win on ratio is why it remains SZ's default predictor (paper §II-B.3);");
  println("regression reconstructs at comparable speed but pays heavily in ratio at tight");
  println("bounds; interpolation (two-sided prediction) closes most of the ratio gap at the");
  println("cost of level-synchronous reconstruction — the SZ3 trade-off of paper ref [19].");
  return 0;
}
