// Ablation — gap-array fine-grained Huffman decoding (the paper's reference
// [15], "Revisiting Huffman Coding", IPDPS'21): decoding granularity vs
// metadata overhead.
//
// The chunked decoder's parallelism is one serial bit-walk per 4096-symbol
// chunk; a gap array of per-sub-block bit offsets lets the decoder enter
// every sub-block independently, trading 4 bytes of metadata per sub-block
// for shorter, warp-convergent chains.  Expected shape: decode throughput
// (modeled) rises as the stride shrinks, while CR dips slightly from the
// metadata.
#include "bench/bench_util.hh"
#include "core/metrics.hh"

namespace {

using namespace szp;
using namespace szp::bench;

}  // namespace

int main() {
  title("Ablation — Huffman decode granularity (gap arrays, paper ref [15])",
        "CESM-like field at rel-eb 1e-4, Workflow-Huffman; V100* = roofline model");

  const auto f = load_field("CESM-ATM", "FSDSC", 0.4);
  println("%12s | %9s | %12s | %14s", "gap stride", "CR", "gap bytes", "decode V100*");
  rule();

  for (const std::uint32_t stride : {0u, 2048u, 1024u, 512u, 256u, 128u}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    cfg.huffman_gap_stride = stride;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    const auto d = Compressor::decompress(c.bytes);
    const auto* dec = d.pipeline.find("huffman_decode");
    const std::size_t gap_bytes =
        stride > 0 ? (f.values.size() / stride) * sizeof(std::uint32_t) : 0;
    println("%12u | %9.3f | %12zu | %14.1f", stride, c.stats.ratio, gap_bytes,
            modeled_gbps(sim::v100(), at_paper_scale(*dec, f)));
  }
  rule();
  println("stride 0 = the chunk-serial decoder (one bit-walk per 4096 symbols), the paper's");
  println("cuSZ/cuSZ+ behavior; finer strides buy the multi-x decode gains reference [15]");
  println("reports.  The cost is archive growth (4 bytes per sub-block — noticeable on this");
  println("highly-compressed field), so ~512-1024 is the practical sweet spot.");
  return 0;
}
