// google-benchmark microbenchmarks of the substrate primitives and the core
// kernels — the per-kernel numbers behind the table benches, with proper
// statistical repetition.  Throughput counters are payload bytes/second.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/predictor/lorenzo.hh"
#include "core/rle/rle.hh"
#include "sim/device_scan.hh"
#include "sim/histogram.hh"
#include "sim/reduce_by_key.hh"

namespace {

using namespace szp;

std::vector<float> bench_field(std::size_t n, std::uint32_t seed = 42) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  float acc = 0.0f;
  for (auto& x : v) {
    acc = 0.995f * acc + 0.02f * dist(rng);
    x = acc;
  }
  return v;
}

std::vector<quant_t> bench_codes(std::size_t n) {
  const auto data = bench_field(n);
  auto lorenzo = lorenzo_construct(data, Extents::d1(n), 1e-3, QuantConfig{});
  return {lorenzo.quant.begin(), lorenzo.quant.end()};
}

void BM_DeviceScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> in(n, 3), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::device_exclusive_scan(std::span<const std::uint64_t>(in), std::span<std::uint64_t>(out)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(std::uint64_t)));
}
BENCHMARK(BM_DeviceScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_DeviceHistogram(benchmark::State& state) {
  const auto codes = bench_codes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::device_histogram<quant_t>(codes, 1024));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * codes.size() * sizeof(float)));
}
BENCHMARK(BM_DeviceHistogram)->Arg(1 << 20);

void BM_ReduceByKey(benchmark::State& state) {
  const auto codes = bench_codes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::reduce_by_key<quant_t, std::uint64_t>(codes));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * codes.size() * sizeof(float)));
}
BENCHMARK(BM_ReduceByKey)->Arg(1 << 20);

template <int Rank>
Extents extents_of(std::size_t n) {
  if constexpr (Rank == 1) return Extents::d1(n);
  if constexpr (Rank == 2) {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return Extents::d2(side, side);
  }
  const auto side = static_cast<std::size_t>(std::cbrt(static_cast<double>(n)));
  return Extents::d3(side, side, side);
}

template <int Rank>
void BM_LorenzoConstruct(benchmark::State& state) {
  const Extents ext = extents_of<Rank>(static_cast<std::size_t>(state.range(0)));
  const auto data = bench_field(ext.count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lorenzo_construct(data, ext, 1e-3, QuantConfig{}));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * ext.count() * sizeof(float)));
}
BENCHMARK(BM_LorenzoConstruct<1>)->Arg(1 << 21);
BENCHMARK(BM_LorenzoConstruct<2>)->Arg(1 << 21);
BENCHMARK(BM_LorenzoConstruct<3>)->Arg(1 << 21);

template <int Rank>
void BM_LorenzoReconstructFused(benchmark::State& state) {
  const Extents ext = extents_of<Rank>(static_cast<std::size_t>(state.range(0)));
  const auto data = bench_field(ext.count());
  auto lorenzo = lorenzo_construct(data, ext, 1e-3, QuantConfig{});
  std::vector<qdiff_t> qprime(ext.count());
  fuse_quant_codes(std::span<const quant_t>(lorenzo.quant.data(), lorenzo.quant.size()),
                   QuantConfig{}.radius(), qprime);
  std::vector<float> out(ext.count());
  for (auto _ : state) {
    auto work = qprime;  // partial sums consume the buffer
    lorenzo_reconstruct_fused(work, ext, 1e-3, out, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * ext.count() * sizeof(float)));
}
BENCHMARK(BM_LorenzoReconstructFused<1>)->Arg(1 << 21);
BENCHMARK(BM_LorenzoReconstructFused<2>)->Arg(1 << 21);
BENCHMARK(BM_LorenzoReconstructFused<3>)->Arg(1 << 21);

void BM_HuffmanEncode(benchmark::State& state) {
  const auto codes = bench_codes(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> freq(1024, 0);
  for (const auto c : codes) ++freq[c];
  const auto book = HuffmanCodebook::build(freq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman_encode(codes, book));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * codes.size() * sizeof(float)));
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 20);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto codes = bench_codes(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> freq(1024, 0);
  for (const auto c : codes) ++freq[c];
  const auto book = HuffmanCodebook::build(freq);
  const auto enc = huffman_encode(codes, book);
  for (auto _ : state) {
    benchmark::DoNotOptimize(huffman_decode(enc, book));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * codes.size() * sizeof(float)));
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 20);

void BM_RleRoundTrip(benchmark::State& state) {
  const auto codes = bench_codes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto enc = rle_encode(codes);
    benchmark::DoNotOptimize(rle_decode(enc));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * codes.size() * sizeof(float)));
}
BENCHMARK(BM_RleRoundTrip)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
