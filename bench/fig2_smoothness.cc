// Reproduces Fig 2: smoothness analysis that drives the RLE decision.
//
//  (a) madogram of the prequantized data vs the quant-codes (abs-diff), and
//      the binary-variance roughness of quant-codes, against encoding
//      distance (CESM FSDSC-like field at rel-eb 1e-2, Dmax = 200);
//  (b) the smoothness <-> p1 <-> compression-ratio mapping across CESM
//      fields, which is how a CR threshold (e.g. 32x) translates into the
//      practical selector rule <b> <= 1.09.
//
// Also runs the selector-threshold ablation called out in DESIGN.md §6.
#include <cmath>

#include "bench/bench_util.hh"
#include "core/analysis/madogram.hh"
#include "core/analysis/selector.hh"
#include "core/metrics.hh"
#include "core/predictor/lorenzo.hh"
#include "sim/histogram.hh"

namespace {

using namespace szp;
using namespace szp::bench;

std::vector<quant_t> quant_codes_of(const BenchField& f, double eb_rel) {
  const ValueRange range = ValueRange::of(f.values);
  const double eb_abs = ErrorBound::relative(eb_rel).resolve(range.span());
  auto lorenzo = lorenzo_construct(f.values, f.extents(), eb_abs, QuantConfig{});
  return {lorenzo.quant.begin(), lorenzo.quant.end()};
}

std::vector<float> prequant_of(const BenchField& f, double eb_rel) {
  const ValueRange range = ValueRange::of(f.values);
  const double eb_abs = ErrorBound::relative(eb_rel).resolve(range.span());
  std::vector<float> pq(f.values.size());
  for (std::size_t i = 0; i < pq.size(); ++i) {
    pq[i] = static_cast<float>(std::llround(static_cast<double>(f.values[i]) / (2.0 * eb_abs)));
  }
  return pq;
}

}  // namespace

int main() {
  title("Fig 2 — smoothness of prequantized data and quant-codes",
        "madogram / binary variance vs encoding distance; smoothness-p1-CR mapping (CESM-like)");

  // ---- Fig 2a: madogram vs distance on an FSDSC-like field ---------------
  const auto f = load_field("CESM-ATM", "FSDSC", 0.25);
  const double eb = 1e-2;
  const auto pq = prequant_of(f, eb);
  const auto qc = quant_codes_of(f, eb);

  MadogramConfig mcfg;
  mcfg.samples = 400000;
  const auto m_pq = madogram(std::span<const float>(pq), mcfg);
  const auto m_qc = madogram(std::span<const quant_t>(qc), mcfg);

  println("(a) FSDSC-like field at rel-eb 1e-2 (%zu elements)", f.values.size());
  println("%10s | %16s %16s | %18s", "distance", "prequant |diff|", "quant-code |diff|",
          "quant-code binvar");
  rule(' ', 0);
  rule();
  for (const std::size_t d : {1u, 2u, 5u, 10u, 20u, 50u, 100u, 150u, 200u}) {
    println("%10zu | %16.3f %16.3f | %18.4f", d, m_pq.abs_difference[d - 1],
            m_qc.abs_difference[d - 1], m_qc.binary_variance[d - 1]);
  }
  rule();
  println("prequant madogram slope %.4f vs quant-code slope %.4f "
          "(quant-codes are flatter => forward-encodable from any start)",
          m_pq.slope, m_qc.slope);
  println("quant-code mean roughness %.4f, smoothness %.4f", m_qc.mean_roughness,
          m_qc.smoothness());

  // ---- Fig 2b: smoothness <-> p1 <-> CR across fields ----------------------
  println("");
  println("(b) smoothness vs p1 vs measured CR per CESM-like field (rel-eb 1e-2)");
  println("%-12s | %10s %8s %8s | %9s %9s %9s | %s", "field", "smooth", "p1", "<b> est",
          "CR(VLE)", "CR(RLE)", "CR(R+V)", "selector");
  rule();

  const auto ds = data::make_dataset("CESM-ATM", 0.25);
  for (const char* name : {"FSDTOA", "ODV_dust4", "ODV_ocar1", "FSDSC", "SNOWHLND", "ICEFRAC",
                           "PSL", "TAUX", "PHIS", "PS"}) {
    BenchField bf;
    bf.info = data::find_field(ds, name);
    bf.values = data::generate_field(bf.info.spec);
    const auto codes = quant_codes_of(bf, eb);
    const auto m = madogram(std::span<const quant_t>(codes), mcfg);
    const auto freq = sim::device_histogram<quant_t>(codes, QuantConfig{}.capacity);
    const auto decision = select_workflow(freq);

    const auto ratio_of = [&](Workflow wf) {
      CompressConfig cfg;
      cfg.eb = ErrorBound::relative(eb);
      cfg.workflow = wf;
      return Compressor(cfg).compress(bf.values, bf.extents()).stats.ratio;
    };
    println("%-12s | %10.4f %8.4f %8.3f | %9.2f %9.2f %9.2f | %s", name, m.smoothness(),
            decision.stats.p1, decision.est_avg_bits, ratio_of(Workflow::kHuffman),
            ratio_of(Workflow::kRle), ratio_of(Workflow::kRleVle),
            decision.workflow == Workflow::kHuffman ? "VLE" : "RLE(+VLE)");
  }
  rule();

  // ---- Ablation: selector threshold sweep ---------------------------------
  println("");
  println("Ablation — selector threshold <b>* sweep (fraction of 35 CESM fields sent to RLE,");
  println("and the mean CR the selected workflow achieves vs always-VLE / always-RLE+VLE):");
  println("%8s | %10s | %12s %12s %12s", "<b>*", "RLE share", "CR(selected)", "CR(all VLE)",
          "CR(all R+V)");
  rule();
  // Precompute both workflows' ratios and the histogram estimate per field;
  // the threshold sweep then only flips which precomputed CR is "selected".
  struct FieldEval {
    double est_bits, cr_vle, cr_rle_vle;
  };
  std::vector<FieldEval> evals;
  for (const auto& field : ds.fields) {
    BenchField bf;
    bf.info = field;
    bf.values = data::generate_field(field.spec);
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(eb);
    cfg.workflow = Workflow::kHuffman;
    const auto vle = Compressor(cfg).compress(bf.values, bf.extents());
    cfg.workflow = Workflow::kRleVle;
    const auto rv = Compressor(cfg).compress(bf.values, bf.extents());
    evals.push_back({vle.stats.decision.est_avg_bits, vle.stats.ratio, rv.stats.ratio});
  }
  for (const double threshold : {0.9, 1.0, 1.09, 1.2, 1.5, 2.0}) {
    int to_rle = 0;
    double cr_sel = 0.0, cr_vle = 0.0, cr_rv = 0.0;
    for (const auto& e : evals) {
      const bool rle = e.est_bits <= threshold;
      to_rle += rle ? 1 : 0;
      cr_sel += rle ? e.cr_rle_vle : e.cr_vle;
      cr_vle += e.cr_vle;
      cr_rv += e.cr_rle_vle;
    }
    const auto n = static_cast<double>(evals.size());
    println("%8.2f | %9.0f%% | %12.2f %12.2f %12.2f", threshold,
            100.0 * to_rle / n, cr_sel / n, cr_vle / n, cr_rv / n);
  }
  rule();
  println("The 1.09 threshold is where RLE routing switches on for the smooth cohort.  Note the");
  println("paper's rule is throughput-aware: always-RLE+VLE can post a higher mean CR, but it");
  println("spends the extra VLE stages on rough fields for marginal gain (Table IV's PS row).");
  return 0;
}
