// Ablation — codec-level design choices (DESIGN.md §6):
//   (1) Huffman encode-chunk size: per-chunk metadata overhead vs decode
//       parallelism (the "chunkwise metadata" cost the paper notes for
//       CUSZ-VLE in §III-B.2).
//   (2) Quantizer capacity: outlier rate vs codebook size/alphabet cost.
//   (3) The final host lossless stage: LZ77+Huffman (gzip stand-in) vs
//       LZ77+rANS (Zstd stand-in, cuSZ's actual Step-9 choice).
#include "bench/bench_util.hh"
#include "core/metrics.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/timer.hh"

namespace {

using namespace szp;
using namespace szp::bench;

}  // namespace

int main() {
  title("Ablation — Huffman chunk size, quantizer capacity, final lossless stage",
        "CESM FSDSC-like field; rel-eb 1e-4 unless stated");

  const auto f = load_field("CESM-ATM", "FSDSC", 0.3);

  // ---- (1) Huffman chunk size ---------------------------------------------
  println("(1) Huffman encode-chunk size (rel-eb 1e-4, Workflow-Huffman)");
  println("%10s | %9s %16s %18s", "chunk", "CR", "metadata bytes", "decode chunks");
  rule();
  for (const std::uint32_t chunk : {256u, 1024u, 4096u, 16384u, 65536u}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    cfg.huffman_chunk = chunk;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    const std::size_t nchunks = (f.values.size() + chunk - 1) / chunk;
    println("%10u | %9.3f %16zu %18zu", chunk, c.stats.ratio, nchunks * sizeof(std::uint64_t),
            nchunks);
  }
  rule();
  println("Small chunks buy decode parallelism (GPU occupancy) at a per-chunk offset cost;");
  println("the default 4096 keeps metadata below 0.1%% of the symbol payload.");

  // ---- (2) Quantizer capacity ----------------------------------------------
  println("");
  println("(2) Quantizer capacity (rel-eb 1e-4, Workflow-Huffman)");
  println("%10s | %9s %12s %14s", "capacity", "CR", "outliers", "outlier %%");
  rule();
  for (const std::uint32_t cap : {64u, 256u, 1024u, 4096u, 16384u}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    cfg.quant.capacity = cap;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    println("%10u | %9.3f %12zu %13.4f%%", cap, c.stats.ratio, c.stats.outlier_count,
            100.0 * static_cast<double>(c.stats.outlier_count) /
                static_cast<double>(f.values.size()));
  }
  rule();
  println("Too-small capacities push residuals into the 16-byte-per-entry outlier stream;");
  println("oversized ones only grow the codebook.  1024 (the paper's default) is the knee.");

  // ---- (3) Final lossless stage: gzip vs Zstd stand-ins --------------------
  println("");
  println("(3) Host lossless stage over the Workflow-Huffman archive (rel-eb 1e-2)");
  println("%14s | %10s %14s", "stage", "total CR", "host seconds");
  rule();
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-2);
  cfg.workflow = Workflow::kHuffman;
  const auto base = Compressor(cfg).compress(f.values, f.extents());
  const double orig = static_cast<double>(f.bytes());
  {
    sim::Timer t;
    const auto g = lossless::lzh_compress(base.bytes);
    println("%14s | %10.2f %14.3f", "none (qh)", base.stats.ratio, 0.0);
    println("%14s | %10.2f %14.3f", "lzh (gzip)", orig / static_cast<double>(g.size()),
            t.seconds());
  }
  {
    sim::Timer t;
    const auto z = lossless::lzr_compress(base.bytes);
    println("%14s | %10.2f %14.3f", "lzr (zstd)", orig / static_cast<double>(z.size()),
            t.seconds());
  }
  rule();
  println("Either host stage roughly doubles the archive's density on smooth fields — and");
  println("costs host-side latency, which is exactly why cuSZ+ replaces it with on-GPU RLE.");
  return 0;
}
