// Ablation — codec-level design choices (DESIGN.md §6):
//   (1) Huffman encode-chunk size: per-chunk metadata overhead vs decode
//       parallelism (the "chunkwise metadata" cost the paper notes for
//       CUSZ-VLE in §III-B.2).
//   (2) Quantizer capacity: outlier rate vs codebook size/alphabet cost.
//   (3) The final host lossless stage: LZ77+Huffman (gzip stand-in) vs
//       LZ77+rANS (Zstd stand-in, cuSZ's actual Step-9 choice).
//   (4) The pluggable codec tier: every registered quant-code codec swept
//       over representative fields, measured ratio vs the selector's modeled
//       numbers, emitted as BENCH_codec.json — with a gate that kAuto's pick
//       is never Pareto-dominated (both lower measured ratio AND >5% worse
//       modeled encode time than some fixed codec).
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.hh"
#include "core/metrics.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/timer.hh"

namespace {

using namespace szp;
using namespace szp::bench;

constexpr Workflow kFixedCodecs[] = {Workflow::kHuffman, Workflow::kRle, Workflow::kRleVle,
                                     Workflow::kRans,    Workflow::kLz77, Workflow::kLzh,
                                     Workflow::kLzr};

const char* codec_name(Workflow wf) {
  switch (wf) {
    case Workflow::kHuffman: return "huffman";
    case Workflow::kRle: return "rle";
    case Workflow::kRleVle: return "rle+vle";
    case Workflow::kRans: return "rans";
    case Workflow::kLz77: return "lz77";
    case Workflow::kLzh: return "lzh";
    case Workflow::kLzr: return "lzr";
    case Workflow::kAuto: return "auto";
  }
  return "?";
}

double modeled_encode_seconds(const WorkflowDecision& d, Workflow wf) {
  for (const auto& s : d.scores) {
    if (s.workflow == wf) return s.modeled_encode_seconds;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_codec.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  title("Ablation — Huffman chunk size, quantizer capacity, final lossless stage",
        "CESM FSDSC-like field; rel-eb 1e-4 unless stated");

  const auto f = load_field("CESM-ATM", "FSDSC", 0.3);

  // ---- (1) Huffman chunk size ---------------------------------------------
  println("(1) Huffman encode-chunk size (rel-eb 1e-4, Workflow-Huffman)");
  println("%10s | %9s %16s %18s", "chunk", "CR", "metadata bytes", "decode chunks");
  rule();
  for (const std::uint32_t chunk : {256u, 1024u, 4096u, 16384u, 65536u}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    cfg.huffman_chunk = chunk;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    const std::size_t nchunks = (f.values.size() + chunk - 1) / chunk;
    println("%10u | %9.3f %16zu %18zu", chunk, c.stats.ratio, nchunks * sizeof(std::uint64_t),
            nchunks);
  }
  rule();
  println("Small chunks buy decode parallelism (GPU occupancy) at a per-chunk offset cost;");
  println("the default 4096 keeps metadata below 0.1%% of the symbol payload.");

  // ---- (2) Quantizer capacity ----------------------------------------------
  println("");
  println("(2) Quantizer capacity (rel-eb 1e-4, Workflow-Huffman)");
  println("%10s | %9s %12s %14s", "capacity", "CR", "outliers", "outlier %%");
  rule();
  for (const std::uint32_t cap : {64u, 256u, 1024u, 4096u, 16384u}) {
    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-4);
    cfg.workflow = Workflow::kHuffman;
    cfg.quant.capacity = cap;
    const auto c = Compressor(cfg).compress(f.values, f.extents());
    println("%10u | %9.3f %12zu %13.4f%%", cap, c.stats.ratio, c.stats.outlier_count,
            100.0 * static_cast<double>(c.stats.outlier_count) /
                static_cast<double>(f.values.size()));
  }
  rule();
  println("Too-small capacities push residuals into the 16-byte-per-entry outlier stream;");
  println("oversized ones only grow the codebook.  1024 (the paper's default) is the knee.");

  // ---- (3) Final lossless stage: gzip vs Zstd stand-ins --------------------
  println("");
  println("(3) Host lossless stage over the Workflow-Huffman archive (rel-eb 1e-2)");
  println("%14s | %10s %14s", "stage", "total CR", "host seconds");
  rule();
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-2);
  cfg.workflow = Workflow::kHuffman;
  const auto base = Compressor(cfg).compress(f.values, f.extents());
  const double orig = static_cast<double>(f.bytes());
  {
    sim::Timer t;
    const auto g = lossless::lzh_compress(base.bytes);
    println("%14s | %10.2f %14.3f", "none (qh)", base.stats.ratio, 0.0);
    println("%14s | %10.2f %14.3f", "lzh (gzip)", orig / static_cast<double>(g.size()),
            t.seconds());
  }
  {
    sim::Timer t;
    const auto z = lossless::lzr_compress(base.bytes);
    println("%14s | %10.2f %14.3f", "lzr (zstd)", orig / static_cast<double>(z.size()),
            t.seconds());
  }
  rule();
  println("Either host stage roughly doubles the archive's density on smooth fields — and");
  println("costs host-side latency, which is exactly why cuSZ+ replaces it with on-GPU RLE.");

  // ---- (4) Pluggable codec tier: per-codec ratio vs modeled throughput -----
  println("");
  println("(4) Codec tier sweep: measured CR vs modeled V100 encode throughput");
  const struct {
    const char* dataset;
    const char* field;
    double scale;
    double rel_eb;
  } sweeps[] = {
      {"CESM-ATM", "FSDSC", 0.12, 1e-2},  // smooth, sub-bit quant space
      {"HACC", "x", 0.06, 1e-3},          // rough particle coordinates
      {"Nyx", "temperature", 0.12, 1e-2}, // plateau-heavy cosmology
  };

  std::string entries;  // accumulated JSON rows
  bool gate_pass = true;
  for (const auto& sw : sweeps) {
    const auto bf = load_field(sw.dataset, sw.field, sw.scale);
    const double orig_bytes = static_cast<double>(bf.bytes());

    CompressConfig acfg;
    acfg.eb = ErrorBound::relative(sw.rel_eb);
    acfg.workflow = Workflow::kAuto;
    const auto auto_run = Compressor(acfg).compress(bf.values, bf.extents());
    const Workflow pick = auto_run.stats.workflow_used;

    println("");
    println("%s/%s @ rel-eb %.0e (%zu elems) — kAuto picked %s", sw.dataset, sw.field,
            sw.rel_eb, bf.values.size(), codec_name(pick));
    println("%10s | %9s %14s %16s", "codec", "CR", "model enc GB/s", "model enc ms");
    rule();

    double best_measured = 0.0;
    Workflow best_fixed = Workflow::kHuffman;
    double pick_measured = 0.0;
    for (const auto wf : kFixedCodecs) {
      CompressConfig cfg4;
      cfg4.eb = ErrorBound::relative(sw.rel_eb);
      cfg4.workflow = wf;
      const auto c = Compressor(cfg4).compress(bf.values, bf.extents());
      const double enc_s = modeled_encode_seconds(auto_run.stats.decision, wf);
      const double gbps = enc_s > 0.0 ? orig_bytes / enc_s / 1e9 : 0.0;
      println("%10s | %9.2f %14.1f %16.4f", codec_name(wf), c.stats.ratio, gbps, enc_s * 1e3);
      if (c.stats.ratio > best_measured) {
        best_measured = c.stats.ratio;
        best_fixed = wf;
      }
      if (wf == pick) pick_measured = c.stats.ratio;
      entries += std::string(entries.empty() ? "" : ",\n") + "    {\"dataset\": \"" +
                 sw.dataset + "\", \"field\": \"" + sw.field + "\", \"rel_eb\": " +
                 std::to_string(sw.rel_eb) + ", \"codec\": \"" + codec_name(wf) +
                 "\", \"measured_ratio\": " + std::to_string(c.stats.ratio) +
                 ", \"modeled_encode_seconds\": " + std::to_string(enc_s) +
                 ", \"modeled_encode_gbps\": " + std::to_string(gbps) +
                 ", \"picked\": " + (wf == pick ? "true" : "false") + "}";
    }
    rule();

    // Gate: when the auto pick forgoes the measured-best fixed codec, it must
    // be buying modeled encode speed — never >5% slower than that codec on
    // top of the ratio loss (Pareto domination = cost-model regression).
    const double pick_s = modeled_encode_seconds(auto_run.stats.decision, pick);
    const double best_s = modeled_encode_seconds(auto_run.stats.decision, best_fixed);
    const bool dominated = pick_measured < best_measured && pick_s > 1.05 * best_s;
    if (dominated) gate_pass = false;
    println("gate: pick %s (CR %.2f, model %.4f ms) vs measured-best %s (CR %.2f, model "
            "%.4f ms) -> %s",
            codec_name(pick), pick_measured, pick_s * 1e3, codec_name(best_fixed),
            best_measured, best_s * 1e3, dominated ? "DOMINATED" : "ok");
  }

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n  \"entries\": [\n" << entries << "\n  ],\n"
       << "  \"gate\": \"auto pick never Pareto-dominated by a fixed codec "
          "(>5% worse modeled encode time AND lower measured ratio)\",\n"
       << "  \"pass\": " << (gate_pass ? "true" : "false") << "\n}\n";
  println("");
  println("%s — wrote %s", gate_pass ? "PASS" : "FAIL", json_path.c_str());
  return gate_pass ? 0 : 1;
}
