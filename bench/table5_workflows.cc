// Reproduces Table V: throughput of CUSZ+ Workflow-RLE vs CUSZ
// Workflow-Huffman on example RTM, CESM, and Nyx fields — the Huffman/RLE
// codec stage alone and the overall compression pipeline, with compression
// ratios.
//
// Expected shape: the RLE stage runs at or above the Huffman stage's
// throughput (the paper quotes ~100 GB/s for thrust::reduce_by_key on
// V100); overall throughput stays comparable while the smooth fields' CR
// jumps (RTM 31.7 -> 76, Nyx 31 -> 122.7 in the paper).
#include "bench/bench_util.hh"

namespace {

using namespace szp;
using namespace szp::bench;

struct PaperRow {
  double ours_stage_v100, ours_overall_v100, cusz_stage_v100, cusz_overall_v100;
  double ours_cr, cusz_cr;
};

void run_case(const char* label, const BenchField& f, const PaperRow& paper) {
  // Plain Workflow-RLE: the optional trailing VLE is "by default disabled"
  // in the paper (§III-A.3), and Table V's ratios correspond to RLE alone.
  CompressConfig rle_cfg;
  rle_cfg.eb = ErrorBound::relative(1e-2);
  rle_cfg.workflow = Workflow::kRle;
  const auto ours = Compressor(rle_cfg).compress(f.values, f.extents());

  CompressConfig huf_cfg;
  huf_cfg.eb = ErrorBound::relative(1e-2);
  huf_cfg.workflow = Workflow::kHuffman;
  const auto cusz = Compressor(huf_cfg).compress(f.values, f.extents());

  // Stage throughput: RLE(+VLE) stage for ours; Huffman encode for cuSZ.
  sim::StageReport ours_stage = *ours.stats.pipeline.find("rle_encode");
  if (const auto* vle = ours.stats.pipeline.find("rle_vle")) {
    ours_stage.cpu_seconds += vle->cpu_seconds;
    ours_stage.cost += vle->cost;
  }
  const auto& cusz_stage = *cusz.stats.pipeline.find("huffman_encode");

  const auto overall = [&](const CompressStats& st) {
    struct {
      double host, v100, a100;
    } r{};
    r.host = static_cast<double>(st.original_bytes) / st.pipeline.total_cpu_seconds() / 1e9;
    // Modeled at the paper's full field size (see bench_util.hh).
    const auto scaled = pipeline_at_paper_scale(st.pipeline, f);
    const auto payload = static_cast<std::uint64_t>(
        static_cast<double>(paper_field_elems(f.info.spec.dataset)) * sizeof(float));
    r.v100 = modeled_pipeline_gbps(sim::v100(), scaled, payload);
    r.a100 = modeled_pipeline_gbps(sim::a100(), scaled, payload);
    return r;
  };
  const auto ours_all = overall(ours.stats);
  const auto cusz_all = overall(cusz.stats);

  println("%-14s %7.1fMB |  stage: host %6.1f  V100* %6.1f  (paper %5.1f)   "
          "overall: host %5.1f V100* %5.1f (paper %4.1f)  CR %7.2fx (paper %5.1fx)   [ours/RLE]",
          label, f.mb(), ours_stage.cpu_throughput_gbps(),
          modeled_gbps(sim::v100(), at_paper_scale(ours_stage, f)),
          paper.ours_stage_v100, ours_all.host, ours_all.v100, paper.ours_overall_v100,
          ours.stats.ratio, paper.ours_cr);
  println("%-14s %9s |  stage: host %6.1f  V100* %6.1f  (paper %5.1f)   "
          "overall: host %5.1f V100* %5.1f (paper %4.1f)  CR %7.2fx (paper %5.1fx)   [cuSZ/Huff]",
          "", "", cusz_stage.cpu_throughput_gbps(),
          modeled_gbps(sim::v100(), at_paper_scale(cusz_stage, f)),
          paper.cusz_stage_v100, cusz_all.host, cusz_all.v100, paper.cusz_overall_v100,
          cusz.stats.ratio, paper.cusz_cr);
  rule();
}

}  // namespace

int main() {
  title("Table V — Workflow-RLE (ours) vs Workflow-Huffman (cuSZ) throughput & ratio",
        "rel-eb 1e-2; stage = RLE/Huffman codec kernel; V100* = roofline model; "
        "paper values from Table V");

  run_case("RTM #2800", load_field("RTM", "snapshot-2800", 0.4),
           {142.4, 57.8, 135.7, 55.1, 76.0, 31.7});
  run_case("CESM FSDSC", load_field("CESM-ATM", "FSDSC", 0.5),
           {104.8, 47.7, 146.3, 54.8, 26.1, 23.0});
  run_case("Nyx baryon", load_field("Nyx", "baryon_density", 0.3),
           {159.1, 64.1, 130.8, 58.9, 122.7, 31.0});

  println("Shape checks: comparable overall throughput, large CR gains on RTM/Nyx, parity on CESM.");
  return 0;
}
