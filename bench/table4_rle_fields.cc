// Reproduces Table IV: per-field CESM-ATM compression ratios at rel-eb 1e-2
// for the cuSZ+gzip reference (qhg), cuSZ Workflow-Huffman (qh / VLE), and
// cuSZ+'s Workflow-RLE and Workflow-RLE+VLE, with the gain of ours over
// (qh) VLE.
//
// Expected shape: RLE alone beats VLE only on the smoothest fields (FSDSC,
// FSDTOA, ODV_*, SOLIN); RLE+VLE's steady 2-3x multiplier over RLE lifts
// most fields above VLE; qhg remains the (host-cost) ceiling.
#include <map>
#include <string>

#include "bench/bench_util.hh"
#include "lossless/lzh.hh"

namespace {

using namespace szp;
using namespace szp::bench;

// Paper Table IV "ours RLE+VLE" column (the catalog carries qhg/VLE/RLE).
const std::map<std::string, double> kPaperRleVle{
    {"AEROD_v", 30.33},   {"FLNTC", 25.35},     {"FLUTC", 25.46},    {"FSDSC", 71.35},
    {"FSDTOA", 119.17},   {"FSNSC", 29.46},     {"FSNTC", 35.50},    {"FSNTOAC", 35.84},
    {"ICEFRAC", 50.39},   {"LANDFRAC", 40.50},  {"OCNFRAC", 32.55},  {"ODV_bcar1", 110.51},
    {"ODV_bcar2", 89.98}, {"ODV_dust1", 67.72}, {"ODV_dust2", 70.98},{"ODV_dust3", 98.22},
    {"ODV_dust4", 139.27},{"ODV_ocar1", 121.59},{"ODV_ocar2", 98.63},{"PHIS", 28.87},
    {"PRECSC", 58.92},    {"PRECSL", 45.69},    {"PSL", 36.32},      {"PS", 22.27},
    {"SNOWHICE", 45.53},  {"SNOWHLND", 63.33},  {"SOLIN", 119.17},   {"TAUX", 33.28},
    {"TAUY", 36.45},      {"TREFHT", 25.12},    {"TREFMXAV", 27.33}, {"TROP_P", 31.40},
    {"TROP_T", 30.64},    {"TROP_Z", 27.07},    {"TSMX", 24.69},
};

}  // namespace

int main() {
  title("Table IV — CESM-ATM per-field ratios at rel-eb 1e-2",
        "qhg = Huffman archive + LZ77/Huffman stage (gzip stand-in); gain = ours / (qh)VLE; "
        "paper columns for shape comparison");

  println("%-12s | %8s %8s %8s %8s %7s | %26s", "field", "qhg", "VLE", "RLE", "RLE+VLE", "gain",
          "paper (qhg/VLE/RLE/R+V)");
  rule(' ', 0);
  rule();

  const auto ds = data::make_dataset("CESM-ATM", 0.25);
  double won_rle = 0, won_rv = 0, total = 0;
  for (const auto& field : ds.fields) {
    BenchField f;
    f.info = field;
    f.values = data::generate_field(field.spec);

    CompressConfig cfg;
    cfg.eb = ErrorBound::relative(1e-2);
    cfg.workflow = Workflow::kHuffman;
    const auto vle = Compressor(cfg).compress(f.values, f.extents());
    cfg.workflow = Workflow::kRle;
    const auto rle = Compressor(cfg).compress(f.values, f.extents());
    cfg.workflow = Workflow::kRleVle;
    const auto rv = Compressor(cfg).compress(f.values, f.extents());

    const auto gz = lossless::lzh_compress(vle.bytes);
    const double qhg = static_cast<double>(f.bytes()) / static_cast<double>(gz.size());

    const double gain = rv.stats.ratio / vle.stats.ratio;
    println("%-12s | %8.2f %8.2f %8.2f %8.2f %6.2fx | %7.2f %6.2f %6.2f %6.2f",
            field.spec.name.c_str(), qhg, vle.stats.ratio, rle.stats.ratio, rv.stats.ratio, gain,
            field.paper_qhg_cr, field.paper_vle_cr, field.paper_rle_cr,
            kPaperRleVle.at(field.spec.name));
    total += 1;
    won_rle += rle.stats.ratio > vle.stats.ratio ? 1 : 0;
    won_rv += rv.stats.ratio > vle.stats.ratio ? 1 : 0;
  }
  rule();
  println("RLE alone beats VLE on %.0f/%.0f fields; RLE+VLE beats VLE on %.0f/%.0f "
          "(paper: 9/35 and 35/35).",
          won_rle, total, won_rv, total);
  return 0;
}
