// Reproduces Table II: Lorenzo *reconstruction* throughput for 1/2/3-D —
// cuSZ's coarse chunk-serial kernel vs the naive shared-memory partial-sum
// proof of concept vs the optimized fused partial-sum kernel, modeled on
// V100 and A100 (plus measured host throughput of the simulated kernels).
//
// Also runs the per-thread sequentiality ablation the paper uses to pick 8
// (§IV-B.3b), and the modified-quantization ablation (residual-space
// outliers = branch-free fuse vs cuSZ's placeholder branch) implicit in the
// coarse-vs-fine comparison.
//
// Fields mirror the paper: HACC vx (1D), a CESM field (2D), Nyx
// baryon_density (3D).
#include "bench/bench_util.hh"
#include "baseline/cusz_ref.hh"
#include "core/metrics.hh"
#include "sim/timer.hh"

namespace {

using namespace szp;
using namespace szp::bench;

struct PaperRow {
  double cusz_v100, naive_v100, naive_a100, opt_v100, opt_a100;
};

void run_case(const char* label, const BenchField& f, const PaperRow& paper) {
  // Build archives once with both pipelines.
  CompressConfig pcfg;
  pcfg.eb = ErrorBound::relative(1e-4);
  pcfg.workflow = Workflow::kHuffman;
  const auto plus = Compressor(pcfg).compress(f.values, f.extents());

  baseline::CuszConfig bcfg;
  bcfg.eb = ErrorBound::relative(1e-4);
  const auto base = baseline::CuszCompressor(bcfg).compress(f.values, f.extents());

  const auto stage_of = [](const Decompressed& d) {
    return *d.pipeline.find("lorenzo_reconstruct");
  };

  const auto coarse_host = stage_of(baseline::CuszCompressor::decompress(base.bytes));
  const auto naive_host =
      stage_of(Compressor::decompress(plus.bytes, {ReconstructVariant::kNaivePartialSum, 1}));
  const auto opt_host =
      stage_of(Compressor::decompress(plus.bytes, {ReconstructVariant::kOptimizedPartialSum, 8}));
  // Modeled columns evaluate at the paper's full field size (the occupancy
  // and launch-overhead regime the published numbers were measured in).
  const auto coarse = at_paper_scale(coarse_host, f);
  const auto naive = at_paper_scale(naive_host, f);
  const auto opt = at_paper_scale(opt_host, f);

  println("%-12s %8.1f MB | %28s | %28s | %28s", label, f.mb(), "cuSZ coarse", "naive p-sum",
          "optimized p-sum");
  println("%-12s %11s | %8s %8s %9s | %8s %8s %9s | %8s %8s %9s", "", "", "host", "V100*",
          "paperV100", "host", "V100*", "paperV100", "host", "V100*", "paperV100");
  println("%-12s %11s | %8.1f %8.1f %9.1f | %8.1f %8.1f %9.1f | %8.1f %8.1f %9.1f", "", "",
          coarse_host.cpu_throughput_gbps(), modeled_gbps(sim::v100(), coarse), paper.cusz_v100,
          naive_host.cpu_throughput_gbps(), modeled_gbps(sim::v100(), naive), paper.naive_v100,
          opt_host.cpu_throughput_gbps(), modeled_gbps(sim::v100(), opt), paper.opt_v100);
  println("%-12s %11s | %8s %8.1f %9s | %8s %8.1f %9.1f | %8s %8.1f %9.1f", "", "(A100*)", "",
          modeled_gbps(sim::a100(), coarse), "-", "", modeled_gbps(sim::a100(), naive),
          paper.naive_a100, "", modeled_gbps(sim::a100(), opt), paper.opt_a100);
  println("%-12s modeled speedup over coarse: naive %0.1fx, optimized %0.1fx (V100)", "",
          modeled_gbps(sim::v100(), naive) / modeled_gbps(sim::v100(), coarse),
          modeled_gbps(sim::v100(), opt) / modeled_gbps(sim::v100(), coarse));
  rule();
}

}  // namespace

int main() {
  title("Table II — Lorenzo reconstruction throughput (GB/s), 1/2/3-D",
        "host = measured on the simulated-GPU substrate; V100*/A100* = roofline model; "
        "paper columns from Table II");

  run_case("1D (HACC)", load_field("HACC", "vx", 0.5), {16.8, 252.6, 219.8, 313.1, 504.5});
  run_case("2D (CESM)", load_field("CESM-ATM", "FSDSC", 0.6), {58.5, 198.4, 182.1, 254.2, 508.6});
  run_case("3D (Nyx)", load_field("Nyx", "baryon_density", 0.3),
           {29.7, 175.9, 147.9, 238.1, 405.1});

  // ---- Sequentiality ablation (the paper identifies 8 as optimal) --------
  println("");
  println("Ablation — per-thread sequentiality of the optimized kernel (host GB/s, 3D Nyx):");
  println("%6s | %10s", "seq", "host GB/s");
  rule();
  const auto f = load_field("Nyx", "baryon_density", 0.3);
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(1e-4);
  const auto arc = Compressor(cfg).compress(f.values, f.extents());
  for (const std::size_t seq : {1u, 2u, 4u, 8u, 16u, 32u}) {
    // Median of 3 to stabilize single-core timing.
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto d =
          Compressor::decompress(arc.bytes, {ReconstructVariant::kOptimizedPartialSum, seq});
      best = std::max(best, d.pipeline.find("lorenzo_reconstruct")->cpu_throughput_gbps());
    }
    println("%6zu | %10.2f", seq, best);
  }
  rule();
  return 0;
}
