// Shared helpers for the paper-table benchmark harnesses.
//
// Every bench prints (a) measured host throughput of the simulated-GPU
// kernels and (b) roofline-modeled V100/A100 throughput from each kernel's
// analytic cost (DESIGN.md §2).  Paper reference numbers are printed
// alongside where the paper reports them, so shape comparisons are
// one-glance.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/compressor.hh"
#include "data/catalog.hh"
#include "data/synthetic.hh"
#include "sim/device.hh"
#include "sim/perf_model.hh"

namespace szp::bench {

inline void println(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline void rule(char c = '-', int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc(c, stdout);
  std::fputc('\n', stdout);
}

inline void title(const std::string& heading, const std::string& subtitle) {
  rule('=');
  println("%s", heading.c_str());
  println("%s", subtitle.c_str());
  rule('=');
}

/// Modeled GB/s of one pipeline stage on a device (payload = uncompressed
/// bytes, the paper's throughput convention).
inline double modeled_gbps(const sim::DeviceSpec& dev, const sim::StageReport& s) {
  return sim::modeled_throughput_gbps(dev, s.cost, s.payload_bytes);
}

/// Generate a catalog field's data at the given axis scale.
struct BenchField {
  data::CatalogField info;
  std::vector<float> values;

  [[nodiscard]] const Extents& extents() const { return info.spec.extents; }
  [[nodiscard]] std::uint64_t bytes() const { return values.size() * sizeof(float); }
  [[nodiscard]] double mb() const { return static_cast<double>(bytes()) / 1e6; }
};

inline BenchField load_field(const std::string& dataset, const std::string& field,
                             double axis_scale) {
  BenchField f;
  f.info = data::find_field(data::make_dataset(dataset, axis_scale), field);
  f.values = data::generate_field(f.info.spec);
  return f;
}

inline BenchField load_first_field(const std::string& dataset, double axis_scale) {
  BenchField f;
  f.info = data::make_dataset(dataset, axis_scale).fields.front();
  f.values = data::generate_field(f.info.spec);
  return f;
}

/// Element count of one field at the paper's evaluation size (Table III).
inline std::uint64_t paper_field_elems(const std::string& dataset) {
  if (dataset == "HACC") return 280953867ull;
  if (dataset == "CESM-ATM") return 1800ull * 3600;
  if (dataset == "Hurricane") return 100ull * 500 * 500;
  if (dataset == "Nyx") return 512ull * 512 * 512;
  if (dataset == "RTM") return 449ull * 449 * 235;
  if (dataset == "Miranda") return 256ull * 384 * 384;
  if (dataset == "QMCPACK") return 288ull * 115 * 69 * 69;
  return 0;
}

/// Linearly rescale a stage's analytic cost to the paper's field size, so
/// the roofline model is evaluated under the paper's occupancy/launch
/// regime rather than this host's scaled-down one.  (Kernel work in this
/// pipeline is linear in the element count.)
inline sim::StageReport at_paper_scale(const sim::StageReport& s, const BenchField& f) {
  const double factor = static_cast<double>(paper_field_elems(f.info.spec.dataset)) /
                        static_cast<double>(f.values.size());
  sim::StageReport out = s;
  out.payload_bytes = static_cast<std::uint64_t>(static_cast<double>(s.payload_bytes) * factor);
  out.cost.bytes_read = static_cast<std::uint64_t>(static_cast<double>(s.cost.bytes_read) * factor);
  out.cost.bytes_written =
      static_cast<std::uint64_t>(static_cast<double>(s.cost.bytes_written) * factor);
  out.cost.flops = static_cast<std::uint64_t>(static_cast<double>(s.cost.flops) * factor);
  out.cost.parallel_items =
      static_cast<std::uint64_t>(static_cast<double>(s.cost.parallel_items) * factor);
  return out;
}

/// Whole-pipeline variant of at_paper_scale.
inline sim::PipelineReport pipeline_at_paper_scale(const sim::PipelineReport& p,
                                                   const BenchField& f) {
  sim::PipelineReport out;
  for (const auto& s : p.stages) out.add(at_paper_scale(s, f));
  return out;
}

}  // namespace szp::bench
