// Reproduces Table VI: per-kernel throughput of cuSZ vs cuSZ+ on V100 for
// the three majorly-changed kernels — Lorenzo construction, Huffman
// encoding, and Lorenzo reconstruction — across five datasets.
//
// Expected shape (paper Table VI): construction gains 1.1-1.6x, Huffman
// encode 1.1-2.1x, and reconstruction 4.4-18.6x (the headline: coarse
// chunk-serial -> fine-grained partial sum).
#include "bench/bench_util.hh"
#include "baseline/cusz_ref.hh"

namespace {

using namespace szp;
using namespace szp::bench;

struct PaperRow {
  double comp_cusz, comp_ours, huff_cusz, huff_ours, decomp_cusz, decomp_ours;
};

void run_case(const char* label, const BenchField& f, const PaperRow& paper) {
  CompressConfig pcfg;
  pcfg.eb = ErrorBound::relative(1e-4);
  pcfg.workflow = Workflow::kHuffman;
  const auto ours = Compressor(pcfg).compress(f.values, f.extents());
  const auto ours_dec = Compressor::decompress(ours.bytes);

  baseline::CuszConfig bcfg;
  bcfg.eb = ErrorBound::relative(1e-4);
  const auto cusz = baseline::CuszCompressor(bcfg).compress(f.values, f.extents());
  const auto cusz_dec = baseline::CuszCompressor::decompress(cusz.bytes);

  // Modeled at the paper's full field size (see bench_util.hh).
  const auto v = [&](const sim::PipelineReport& p, const char* stage) {
    return modeled_gbps(sim::v100(), at_paper_scale(*p.find(stage), f));
  };
  const double comp_c = v(cusz.stats.pipeline, "lorenzo_construct");
  const double comp_o = v(ours.stats.pipeline, "lorenzo_construct");
  const double huff_c = v(cusz.stats.pipeline, "huffman_encode");
  const double huff_o = v(ours.stats.pipeline, "huffman_encode");
  const double dec_c = v(cusz_dec.pipeline, "lorenzo_reconstruct");
  const double dec_o = v(ours_dec.pipeline, "lorenzo_reconstruct");

  println("%-10s | %6.1f %6.1f %5.2fx | %6.1f %6.1f %5.2fx | %6.1f %6.1f %6.2fx |"
          " %5.0f/%-5.0f %4.0f/%-5.0f %4.0f/%-5.0f",
          label, comp_c, comp_o, comp_o / comp_c, huff_c, huff_o, huff_o / huff_c, dec_c, dec_o,
          dec_o / dec_c, paper.comp_cusz, paper.comp_ours, paper.huff_cusz, paper.huff_ours,
          paper.decomp_cusz, paper.decomp_ours);
}

}  // namespace

int main() {
  title("Table VI — kernel throughput on V100 (roofline model), cuSZ vs cuSZ+ (GB/s)",
        "columns per kernel: cuSZ, ours, speedup; right block = paper's cuSZ/ours values");

  println("%-10s | %20s | %20s | %22s | %s", "dataset", "Lorenzo construct", "Huffman encode",
          "Lorenzo reconstruct", "paper (cusz/ours per kernel)");
  rule(' ', 0);
  rule();

  run_case("HACC", load_first_field("HACC", 0.5), {207.7, 307.4, 54.1, 58.3, 16.8, 313.1});
  run_case("CESM", load_field("CESM-ATM", "FSDSC", 0.5), {252.1, 273.9, 57.2, 107.7, 58.5, 254.2});
  run_case("Hurricane", load_field("Hurricane", "Uf48", 0.35), {175.8, 229.9, 55.2, 111.2, 43.9, 218.4});
  run_case("Nyx", load_field("Nyx", "baryon_density", 0.3), {200.2, 296.0, 58.8, 120.5, 29.7, 238.1});
  run_case("QMCPACK", load_first_field("QMCPACK", 0.22), {189.6, 298.6, 61.0, 110.8, 22.4, 255.5});

  rule();
  println("Shape checks: modest construction/Huffman gains; order-of-magnitude reconstruction gain");
  println("(largest in 1D, where the coarse kernel's strided walk is most bandwidth-hostile).");
  return 0;
}
