// Reproduces Table I: averaged compression ratios of schemes
//   qg  — quant-codes fed byte-wise to a generic LZ+entropy coder (gzip
//         stand-in; the "suboptimal single-byte interpretation"),
//   qh  — multi-byte Huffman over quant-codes (cuSZ Workflow-Huffman),
//   qhg — gzip appended after qh (the CPU-SZ-grade reference ceiling),
// on HACC / Hurricane / CESM / Nyx at rel-eb 1e-2 / 1e-3 / 1e-4.
//
// Expected shape (paper Table I): qhg >= qh everywhere; the qhg/qh gap
// widens as the bound loosens (smoother quant-codes leave more repeated
// patterns on the table); qg under-performs qh at loose bounds because the
// byte-wise split of multi-byte symbols hides the symbol distribution.
#include <map>

#include "bench/bench_util.hh"
#include "core/metrics.hh"
#include "core/predictor/lorenzo.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"

namespace {

using namespace szp;
using namespace szp::bench;

struct SchemeRatios {
  double qg = 0.0, qh = 0.0, qhg = 0.0, qhz = 0.0;
};

SchemeRatios measure(const BenchField& f, double eb_rel) {
  SchemeRatios r;
  const auto orig_bytes = static_cast<double>(f.bytes());

  // qh: the full Workflow-Huffman archive.
  CompressConfig cfg;
  cfg.eb = ErrorBound::relative(eb_rel);
  cfg.workflow = Workflow::kHuffman;
  const auto qh = Compressor(cfg).compress(f.values, f.extents());
  r.qh = qh.stats.ratio;

  // qhg: gzip-substitute over the qh archive.
  const auto qhg = lossless::lzh_compress(qh.bytes);
  r.qhg = orig_bytes / static_cast<double>(qhg.size());

  // qhz: Zstd-substitute (LZ77+rANS) over the qh archive — what cuSZ's
  // actual Step-9 does on the host.
  const auto qhz = lossless::lzr_compress(qh.bytes);
  r.qhz = orig_bytes / static_cast<double>(qhz.size());

  // qg: quant-codes interpreted as raw bytes into the generic coder
  // (plus the outliers stored raw, as a real qg archive would carry them).
  const ValueRange range = ValueRange::of(f.values);
  const double eb_abs = ErrorBound::relative(eb_rel).resolve(range.span());
  const auto lorenzo = lorenzo_construct(f.values, f.extents(), eb_abs, QuantConfig{});
  const auto* qbytes = reinterpret_cast<const std::uint8_t*>(lorenzo.quant.data());
  const auto qg = lossless::lzh_compress(
      std::span<const std::uint8_t>(qbytes, lorenzo.quant.size() * sizeof(quant_t)));
  std::size_t outlier_bytes = 0;
  for (const auto v : lorenzo.outlier_dense) outlier_bytes += v != 0 ? 12u : 0u;
  r.qg = orig_bytes / static_cast<double>(qg.size() + outlier_bytes);
  return r;
}

}  // namespace

int main() {
  title("Table I — compression ratios of qg / qh / qhg schemes",
        "q = dual-quant Lorenzo, h = multi-byte Huffman, g = LZ77+Huffman (gzip stand-in); "
        "ratios are averaged per dataset (synthetic SDRBench stand-ins)");

  // (dataset, fields, axis scale) — a representative subset per dataset;
  // the paper averages 109 fields, we average these.
  const std::vector<std::tuple<std::string, std::vector<std::string>, double>> plan{
      {"HACC", {"x", "vx", "vy"}, 0.12},
      {"Hurricane", {"CLOUDf48", "Pf48", "Uf48"}, 0.25},
      {"CESM-ATM", {"FSDSC", "PS", "ICEFRAC", "ODV_dust4"}, 0.25},
      {"Nyx", {"baryon_density", "temperature", "velocity_x"}, 0.2},
  };
  const std::vector<double> ebs{1e-2, 1e-3, 1e-4};

  // Paper Table I values for reference (per dataset, per eb): {qg, qh, qhg}.
  const std::map<std::string, std::map<double, SchemeRatios>> paper{
      {"HACC",
       {{1e-2, {22.72, 20.33, 31.02}}, {1e-3, {7.58, 9.51, 10.01}}, {1e-4, {3.89, 4.82, 5.01}}}},
      {"Hurricane",
       {{1e-2, {43.67, 24.80, 58.76}}, {1e-3, {18.41, 17.04, 24.65}}, {1e-4, {10.31, 9.76, 12.99}}}},
      {"CESM-ATM",
       {{1e-2, {61.21, 24.24, 75.50}}, {1e-3, {20.78, 18.38, 28.13}}, {1e-4, {9.98, 10.29, 12.50}}}},
      {"Nyx",
       {{1e-2, {118.94, 30.24, 164.39}}, {1e-3, {28.25, 23.92, 40.17}}, {1e-4, {12.87, 15.27, 17.95}}}},
  };

  println("%-12s %-8s | %8s %8s %8s %8s | %8s %8s | %26s", "dataset", "rel-eb", "qg", "qh",
          "qhg", "qhz", "qhg/qh", "qg/qh", "paper (qg / qh / qhg)");
  rule();

  for (const auto& [dataset, fields, scale] : plan) {
    for (const double eb : ebs) {
      SchemeRatios avg;
      for (const auto& name : fields) {
        const auto f = load_field(dataset, name, scale);
        const auto r = measure(f, eb);
        avg.qg += r.qg;
        avg.qh += r.qh;
        avg.qhg += r.qhg;
        avg.qhz += r.qhz;
      }
      const auto n = static_cast<double>(fields.size());
      avg.qg /= n;
      avg.qh /= n;
      avg.qhg /= n;
      avg.qhz /= n;
      const auto& ref = paper.at(dataset).at(eb);
      println("%-12s %-8.0e | %8.2f %8.2f %8.2f %8.2f | %7.2fx %7.2fx | %8.2f %8.2f %8.2f",
              dataset.c_str(), eb, avg.qg, avg.qh, avg.qhg, avg.qhz, avg.qhg / avg.qh,
              avg.qg / avg.qh, ref.qg, ref.qh, ref.qhg);
    }
    rule();
  }
  println("Shape checks: qhg >= qh at every point; qhg/qh gap widens from 1e-4 to 1e-2.");
  return 0;
}
