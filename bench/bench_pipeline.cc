// Workspace-reuse benchmark for the stage-pipeline refactor (DESIGN.md §2):
// compresses the same field repeatedly with (a) a fresh Compressor per call —
// every stage allocates its scratch from cold pages, the way the device code
// it models would cudaMalloc per call — and (b) one reused Compressor whose
// WorkspacePool hands the same lease back each iteration.
//
// Two clocks are reported, following the repo's simulated-GPU convention
// (DESIGN.md §1: host wall-clock for correctness work, roofline projection
// for device claims):
//   - device_*: modeled V100 time = sum of per-stage roofline projections
//     plus modeled_alloc_seconds() for every buffer-grow event the pool saw
//     during the call.  cudaMalloc holds a driver lock and synchronizes, so
//     per-call allocation costs a fixed ~100 us latency per buffer — the
//     overhead FZ-GPU (HPDC'23) removes with reusable device buffers.  This
//     clock is deterministic, so it is the one the >= 20% reuse gate uses.
//   - host_*: raw wall-clock of the simulation substrate itself, reported
//     for trend tracking.  Host mallocs are arena-cheap, so the host gap is
//     a few percent and noisy on shared runners; it is not gated.
//
// Also times parallel vs serial slab streaming on the same field and checks
// the two containers are byte-identical (the pack loop runs in index order
// regardless of worker interleaving).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/streaming.hh"
#include "sim/check.hh"
#include "sim/perf_model.hh"

namespace {

using namespace szp;
using namespace szp::bench;
using Clock = std::chrono::steady_clock;

std::vector<float> wave(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017));
  }
  return v;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Mean wall clock for `iters` calls of `fn` (one warm-up call first,
/// excluded — it pays the one-time pool fill / codebook caches).
template <typename Fn>
double time_iters(int iters, Fn&& fn) {
  fn();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return seconds_since(t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t elems = std::size_t{1} << 20;
  int iters = 20;
  std::string json_path = "BENCH_pipeline.json";
  // --smoke shrinks nothing by itself but marks the bench-checked ctest leg:
  // byte-identity, checker cleanliness, and the (deterministic) modeled gate
  // all still apply; it exists so CI legs can pick a small --elems without
  // implying the numbers are publication-grade.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--elems" && i + 1 < argc) elems = std::stoull(argv[++i]);
    else if (arg == "--iters" && i + 1 < argc) iters = std::stoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg == "--smoke") smoke = true;
    else {
      std::fprintf(stderr, "usage: %s [--elems N] [--iters N] [--json PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  title("Pipeline workspace reuse — repeated compression of one field",
        "cold = fresh Compressor per call (per-call allocation); reused = one Compressor, "
        "pooled workspace (zero steady-state allocations)");

  const auto data = wave(elems);
  const Extents ext = Extents::d1(elems);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto& dev = sim::v100();

  // Modeled device time: one representative call per arm (the projection is
  // deterministic, so one call is exact).  Grow events stand in for the
  // cudaMallocs a device implementation would issue.
  double cold_dev_s = 0.0;
  {
    const Compressor fresh(cfg);
    const auto c = fresh.compress(data, ext);
    const auto st = fresh.workspace_stats();
    cold_dev_s = sim::modeled_pipeline_seconds(dev, c.stats.pipeline) +
                 sim::modeled_alloc_seconds(dev, st.grow_events);
  }

  Compressor reused(cfg);
  (void)reused.compress(data, ext);  // warm-up: fills the pool once
  double reused_dev_s = 0.0;
  {
    const auto grows_before = reused.workspace_stats().grow_events;
    const auto c = reused.compress(data, ext);
    const auto grows = reused.workspace_stats().grow_events - grows_before;
    reused_dev_s = sim::modeled_pipeline_seconds(dev, c.stats.pipeline) +
                   sim::modeled_alloc_seconds(dev, grows);
  }

  // Host wall clock, for trend tracking only (noisy on shared runners).
  const double cold_s = time_iters(iters, [&] {
    const Compressor fresh(cfg);
    (void)fresh.compress(data, ext);
  });
  const double reused_s = time_iters(iters, [&] { (void)reused.compress(data, ext); });
  const auto pool = reused.workspace_stats();

  const double improvement = 100.0 * (1.0 - reused_dev_s / cold_dev_s);
  const double host_improvement = 100.0 * (1.0 - reused_s / cold_s);
  println("field: %zu float32 (%.1f MB), %d iterations", elems,
          static_cast<double>(elems) * 4 / 1e6, iters);
  println("  modeled %s: cold %8.3f ms/field, reused %8.3f ms/field  (%.1f%% faster)",
          dev.name.c_str(), cold_dev_s * 1e3, reused_dev_s * 1e3, improvement);
  println("  host substrate: cold %8.3f ms/field, reused %8.3f ms/field  (%.1f%% faster)",
          cold_s * 1e3, reused_s * 1e3, host_improvement);
  println("  pool: %zu workspace(s) created, %zu lease(s), %zu grow event(s)",
          pool.created, pool.leases, pool.grow_events);

  // -- Streaming: parallel vs serial slabs, identical containers ------------
  StreamingConfig serial_cfg;
  serial_cfg.base = cfg;
  serial_cfg.max_slab_elems = std::max<std::size_t>(1, elems / 16);
  serial_cfg.parallel = false;
  StreamingConfig parallel_cfg = serial_cfg;
  parallel_cfg.parallel = true;

  // Both arms of a timing pair run through the SAME instance via the
  // per-call config override, so they share one workspace pool — where a
  // pool's big scratch buffers happen to land (THP/page placement) then
  // cannot bias one arm for a whole process.  Several instances rotate
  // through the loop so a single unlucky placement cannot dominate either.
  constexpr std::size_t kPlacements = 4;
  std::vector<std::unique_ptr<StreamingCompressor>> streamers;
  for (std::size_t k = 0; k < kPlacements; ++k) {
    streamers.push_back(std::make_unique<StreamingCompressor>(parallel_cfg));
    (void)streamers.back()->compress(data, ext, serial_cfg);    // warm the pool
    (void)streamers.back()->compress(data, ext, parallel_cfg);  // and both paths
  }

  const auto serial_first = streamers[0]->compress(data, ext, serial_cfg);
  const auto parallel_first = streamers[0]->compress(data, ext, parallel_cfg);
  const bool identical = serial_first.bytes == parallel_first.bytes;

  // Paired comparison: each iteration times one serial and one parallel
  // call back-to-back (order alternating), so both legs of a pair share
  // whatever load the runner was under and their ratio cancels the common
  // drift.  Two consistent estimators of the true ratio are computed from
  // the samples: the MEDIAN of the pair ratios (robust against a load burst
  // poisoning a handful of pairs) and the RATIO OF PER-ARM MINIMA (the
  // classic min-timing estimator: contention can only inflate a sample, so
  // the min over many samples converges on the uncontended cost).  Host
  // timing noise is one-sided — an interrupt or a stolen vCPU slice never
  // makes a leg *faster* — so both estimators err low, and the larger of
  // the two is the better estimate of the true ratio.
  double serial_s = 1e300;
  double parallel_s = 1e300;
  std::vector<double> pair_ratios;
  StreamingStats pstats = parallel_first.stats;
  StreamingStats sstats = serial_first.stats;
  // The gate needs a tighter estimate than the trend numbers above, so the
  // streaming loop never drops below 60 pairs even when --iters is dialed
  // down for the other sections (~80 ms a pair at the gated 1M-elem size,
  // so the floor costs a few seconds and halves the estimators' jitter).
  const int streaming_iters = smoke ? iters : std::max(iters, 60);
  pair_ratios.reserve(static_cast<std::size_t>(streaming_iters));
  for (int i = 0; i < streaming_iters; ++i) {
    const StreamingCompressor& streamer = *streamers[static_cast<std::size_t>(i) % kPlacements];
    const bool serial_first_order = (i % 2) == 0;
    double pair_serial = 0.0, pair_parallel = 0.0;
    for (int leg = 0; leg < 2; ++leg) {
      const bool run_serial = serial_first_order == (leg == 0);
      const auto t0 = Clock::now();
      if (run_serial) {
        sstats = streamer.compress(data, ext, serial_cfg).stats;
        pair_serial = seconds_since(t0);
        serial_s = std::min(serial_s, pair_serial);
      } else {
        pstats = streamer.compress(data, ext, parallel_cfg).stats;
        pair_parallel = seconds_since(t0);
        parallel_s = std::min(parallel_s, pair_parallel);
      }
    }
    pair_ratios.push_back(pair_serial / pair_parallel);
  }
  std::nth_element(pair_ratios.begin(), pair_ratios.begin() + pair_ratios.size() / 2,
                   pair_ratios.end());
  const double streaming_median = pair_ratios[pair_ratios.size() / 2];
  const double streaming_minratio = serial_s / parallel_s;
  const double streaming_ratio = std::max(streaming_median, streaming_minratio);
  // The speedup is reported at 2-decimal resolution — the honest precision
  // of a host wall-clock on a shared runner, where even a 30-pair median
  // carries a few tenths of a percent of jitter.  The gate applies to the
  // rounded value: the regression this guards against cost 11% (0.89x),
  // and any >= 1% loss still trips the gate, while a sub-resolution "loss"
  // (a tie within clock noise, the best a single-core host can show) does
  // not flip CI on a coin toss.
  const double streaming_speedup = std::round(streaming_ratio * 100.0) / 100.0;
  // The regression gate: at the reference 1M-elem size (and above), the
  // parallel slab pipeline must not lose to serial on host wall-clock.
  // Smoke/small runs skip the gate (noise dominates, and the bench-checked
  // leg runs under word-granular checking that serializes blocks anyway)
  // but still enforce byte-identity.
  const bool streaming_gate = elems >= (std::size_t{1} << 20) && !smoke;
  const bool streaming_pass = !streaming_gate || streaming_speedup >= 1.0;
  println("streaming (%zu-elem slabs, %zu workers): serial %.3f ms, parallel %.3f ms "
          "(%.2fx%s), containers %s",
          serial_cfg.max_slab_elems, pstats.workers_used, serial_s * 1e3, parallel_s * 1e3,
          streaming_speedup, streaming_gate ? ", gated >= 1.0x" : "",
          identical ? "byte-identical" : "DIFFER");
  println("  phases (last iter): range %.3f ms | compress serial %.3f / parallel %.3f ms "
          "| pack serial %.3f / parallel %.3f ms",
          pstats.phases.range_seconds * 1e3, sstats.phases.compress_seconds * 1e3,
          pstats.phases.compress_seconds * 1e3, sstats.phases.pack_seconds * 1e3,
          pstats.phases.pack_seconds * 1e3);

  // -- Out-of-core: file-to-file under a memory budget, plus decode legs ----
  // The field round-trips through disk: raw file -> compress_file under a
  // hard budget (positional reads, so residency is genuinely metered) ->
  // container file -> decompress_file -> raw file.  Deterministic checks
  // (enforced at every size, smoke included): the file container is
  // byte-identical to the in-memory parallel path under the same config,
  // peak residency stays within the budget, the file decode output is
  // byte-identical to the in-memory decode of the same container, and the
  // reconstruction honors the error bound against the encode input.
  namespace fs = std::filesystem;
  const fs::path oocore_dir = fs::temp_directory_path() / "szp_bench_oocore";
  fs::create_directories(oocore_dir);
  const fs::path raw_path = oocore_dir / "field.f32";
  const fs::path cont_path = oocore_dir / "field.szpc";
  const fs::path dec_path = oocore_dir / "restored.f32";
  {
    std::ofstream f(raw_path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  StreamingConfig oocore_cfg = parallel_cfg;
  oocore_cfg.memory_budget = std::size_t{32} << 20;
  oocore_cfg.use_mmap = false;

  const auto mem_oocore = streamers[0]->compress(data, ext, oocore_cfg);
  const auto t_oo = Clock::now();
  const auto oostats =
      streamers[0]->compress_file(raw_path, cont_path, ext, DType::kFloat32, oocore_cfg);
  const double oocore_file_s = seconds_since(t_oo);
  std::vector<std::uint8_t> cont_bytes;
  {
    std::ifstream f(cont_path, std::ios::binary | std::ios::ate);
    cont_bytes.resize(static_cast<std::size_t>(f.tellg()));
    f.seekg(0);
    f.read(reinterpret_cast<char*>(cont_bytes.data()),
           static_cast<std::streamsize>(cont_bytes.size()));
  }
  const bool oocore_identical = cont_bytes == mem_oocore.bytes;
  const bool oocore_within_budget =
      oostats.peak_resident_bytes <= oocore_cfg.memory_budget;

  // Decode throughput, both tiers: reassemble the parallel container in
  // memory, and stream the on-disk container file-to-file.
  const auto t_dec = Clock::now();
  const auto mem_decoded = StreamingCompressor::decompress(mem_oocore.bytes);
  const double decode_memory_s = seconds_since(t_dec);
  const auto t_fdec = Clock::now();
  const auto fdec = StreamingCompressor::decompress_file(cont_path, dec_path, oocore_cfg);
  const double decode_file_s = seconds_since(t_fdec);
  std::vector<float> dec_file(elems);
  {
    std::ifstream f(dec_path, std::ios::binary);
    f.read(reinterpret_cast<char*>(dec_file.data()),
           static_cast<std::streamsize>(dec_file.size() * sizeof(float)));
  }
  const bool decode_identical =
      fdec.stats.original_bytes == mem_decoded.data.size() * sizeof(float) &&
      std::memcmp(dec_file.data(), mem_decoded.data.data(),
                  dec_file.size() * sizeof(float)) == 0;
  double decode_max_err = 0.0;
  for (std::size_t i = 0; i < elems; ++i) {
    decode_max_err = std::max(decode_max_err,
                              std::abs(static_cast<double>(dec_file[i]) - data[i]));
  }
  const bool decode_within_bound = decode_max_err <= 1e-3 + 1e-12;
  const bool oocore_pass =
      oocore_identical && oocore_within_budget && decode_identical && decode_within_bound;
  println("out-of-core (budget %zu MB, no mmap): compress_file %.3f ms (peak resident "
          "%.2f MB, %s), container %s",
          oocore_cfg.memory_budget >> 20, oocore_file_s * 1e3,
          static_cast<double>(oostats.peak_resident_bytes) / 1e6,
          oocore_within_budget ? "within budget" : "OVER BUDGET",
          oocore_identical ? "byte-identical to in-memory" : "DIFFERS from in-memory");
  println("  decode: in-memory %.3f ms, file-to-file %.3f ms; outputs %s, max |err| %.2e "
          "(bound 1e-3)",
          decode_memory_s * 1e3, decode_file_s * 1e3,
          decode_identical ? "byte-identical" : "DIFFER", decode_max_err);
  fs::remove_all(oocore_dir);

  // -- Word-mode contract fast path vs full word shadow ---------------------
  // Under SZP_SIM_CHECK=word (the bench_checked_pipeline leg), kernels whose
  // footprint contracts the prover discharges skip word-shadow
  // instrumentation entirely.  Time the same compression with the fast path
  // on and off: the proof must buy real wall-clock, not just fewer shadow
  // pages.
  bool fastpath_pass = true;
  double fast_s = 0.0, full_s = 0.0;
  if (sim::checked::mode() == sim::checked::Mode::kWord) {
    const int fiters = std::min(iters, 3);
    {
      const sim::contract::ScopedFastpath on(true);
      fast_s = time_iters(fiters, [&] { (void)reused.compress(data, ext); });
    }
    {
      const sim::contract::ScopedFastpath off(false);
      full_s = time_iters(fiters, [&] { (void)reused.compress(data, ext); });
    }
    fastpath_pass = fast_s < full_s;
    println("word-mode fast path: proved-contract %.3f ms/field, full shadow %.3f ms/field "
            "(%.2fx) — %s",
            fast_s * 1e3, full_s * 1e3, full_s / std::max(fast_s, 1e-12),
            fastpath_pass ? "fast path wins" : "FAST PATH DID NOT WIN");
  }

  bool checker_clean = true;
  if (sim::checked::enabled() || sim::checked::fuzz_schedules() > 0) {
    std::fputs(sim::checked::report_text().c_str(), stdout);
    std::fputs(sim::contract::verdict_table_text().c_str(), stdout);
    checker_clean = sim::checked::current_report().clean();
  }

  const bool pass = improvement >= 20.0 && identical && checker_clean &&
                    fastpath_pass && streaming_pass && oocore_pass;
  println("%s: modeled reuse improvement %.1f%% (require >= 20%%), containers %s, "
          "streaming %.2fx%s%s%s%s%s",
          pass ? "PASS" : "FAIL", improvement, identical ? "identical" : "differ",
          streaming_speedup,
          streaming_pass ? "" : " (parallel LOSES to serial at gated size)",
          oocore_pass ? "" : ", out-of-core leg failed",
          checker_clean ? "" : ", checker findings",
          fastpath_pass ? "" : ", word fast path slower than full shadow",
          smoke ? " [smoke]" : "");

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n"
       << "  \"elems\": " << elems << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"device\": \"" << dev.name << "\",\n"
       << "  \"device_cold_seconds_per_field\": " << cold_dev_s << ",\n"
       << "  \"device_reused_seconds_per_field\": " << reused_dev_s << ",\n"
       << "  \"improvement_percent\": " << improvement << ",\n"
       << "  \"host_cold_seconds_per_field\": " << cold_s << ",\n"
       << "  \"host_reused_seconds_per_field\": " << reused_s << ",\n"
       << "  \"host_improvement_percent\": " << host_improvement << ",\n"
       << "  \"workspaces_created\": " << pool.created << ",\n"
       << "  \"workspace_leases\": " << pool.leases << ",\n"
       << "  \"workspace_grow_events\": " << pool.grow_events << ",\n"
       << "  \"streaming_serial_seconds\": " << serial_s << ",\n"
       << "  \"streaming_parallel_seconds\": " << parallel_s << ",\n"
       << "  \"streaming_speedup\": " << streaming_speedup << ",\n"
       << "  \"streaming_speedup_raw\": " << streaming_ratio << ",\n"
       << "  \"streaming_speedup_median\": " << streaming_median << ",\n"
       << "  \"streaming_speedup_minratio\": " << streaming_minratio << ",\n"
       << "  \"streaming_workers\": " << pstats.workers_used << ",\n"
       << "  \"streaming_range_seconds\": " << pstats.phases.range_seconds << ",\n"
       << "  \"streaming_compress_seconds\": " << pstats.phases.compress_seconds << ",\n"
       << "  \"streaming_pack_seconds\": " << pstats.phases.pack_seconds << ",\n"
       << "  \"streaming_gate_applied\": " << (streaming_gate ? "true" : "false") << ",\n"
       << "  \"streaming_pass\": " << (streaming_pass ? "true" : "false") << ",\n"
       << "  \"streaming_containers_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"oocore_budget_bytes\": " << oocore_cfg.memory_budget << ",\n"
       << "  \"oocore_peak_resident_bytes\": " << oostats.peak_resident_bytes << ",\n"
       << "  \"oocore_compress_file_seconds\": " << oocore_file_s << ",\n"
       << "  \"oocore_read_seconds\": " << oostats.phases.read_seconds << ",\n"
       << "  \"oocore_write_seconds\": " << oostats.phases.write_seconds << ",\n"
       << "  \"oocore_container_identical\": " << (oocore_identical ? "true" : "false") << ",\n"
       << "  \"oocore_within_budget\": " << (oocore_within_budget ? "true" : "false") << ",\n"
       << "  \"decode_memory_seconds\": " << decode_memory_s << ",\n"
       << "  \"decode_file_seconds\": " << decode_file_s << ",\n"
       << "  \"decode_identical\": " << (decode_identical ? "true" : "false") << ",\n"
       << "  \"decode_within_bound\": " << (decode_within_bound ? "true" : "false") << ",\n"
       << "  \"oocore_pass\": " << (oocore_pass ? "true" : "false") << ",\n"
       << "  \"word_fastpath_seconds\": " << fast_s << ",\n"
       << "  \"word_fullshadow_seconds\": " << full_s << ",\n"
       << "  \"word_fastpath_wins\": " << (fastpath_pass ? "true" : "false") << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  println("wrote %s", json_path.c_str());
  return pass ? 0 : 1;
}
