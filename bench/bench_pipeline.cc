// Workspace-reuse benchmark for the stage-pipeline refactor (DESIGN.md §2):
// compresses the same field repeatedly with (a) a fresh Compressor per call —
// every stage allocates its scratch from cold pages, the way the device code
// it models would cudaMalloc per call — and (b) one reused Compressor whose
// WorkspacePool hands the same lease back each iteration.
//
// Two clocks are reported, following the repo's simulated-GPU convention
// (DESIGN.md §1: host wall-clock for correctness work, roofline projection
// for device claims):
//   - device_*: modeled V100 time = sum of per-stage roofline projections
//     plus modeled_alloc_seconds() for every buffer-grow event the pool saw
//     during the call.  cudaMalloc holds a driver lock and synchronizes, so
//     per-call allocation costs a fixed ~100 us latency per buffer — the
//     overhead FZ-GPU (HPDC'23) removes with reusable device buffers.  This
//     clock is deterministic, so it is the one the >= 20% reuse gate uses.
//   - host_*: raw wall-clock of the simulation substrate itself, reported
//     for trend tracking.  Host mallocs are arena-cheap, so the host gap is
//     a few percent and noisy on shared runners; it is not gated.
//
// Also times parallel vs serial slab streaming on the same field and checks
// the two containers are byte-identical (the pack loop runs in index order
// regardless of worker interleaving).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/streaming.hh"
#include "sim/check.hh"
#include "sim/perf_model.hh"

namespace {

using namespace szp;
using namespace szp::bench;
using Clock = std::chrono::steady_clock;

std::vector<float> wave(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017));
  }
  return v;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Mean wall clock for `iters` calls of `fn` (one warm-up call first,
/// excluded — it pays the one-time pool fill / codebook caches).
template <typename Fn>
double time_iters(int iters, Fn&& fn) {
  fn();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return seconds_since(t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t elems = std::size_t{1} << 20;
  int iters = 20;
  std::string json_path = "BENCH_pipeline.json";
  // --smoke shrinks nothing by itself but marks the bench-checked ctest leg:
  // byte-identity, checker cleanliness, and the (deterministic) modeled gate
  // all still apply; it exists so CI legs can pick a small --elems without
  // implying the numbers are publication-grade.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--elems" && i + 1 < argc) elems = std::stoull(argv[++i]);
    else if (arg == "--iters" && i + 1 < argc) iters = std::stoi(argv[++i]);
    else if (arg == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (arg == "--smoke") smoke = true;
    else {
      std::fprintf(stderr, "usage: %s [--elems N] [--iters N] [--json PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  title("Pipeline workspace reuse — repeated compression of one field",
        "cold = fresh Compressor per call (per-call allocation); reused = one Compressor, "
        "pooled workspace (zero steady-state allocations)");

  const auto data = wave(elems);
  const Extents ext = Extents::d1(elems);
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = Workflow::kHuffman;
  const auto& dev = sim::v100();

  // Modeled device time: one representative call per arm (the projection is
  // deterministic, so one call is exact).  Grow events stand in for the
  // cudaMallocs a device implementation would issue.
  double cold_dev_s = 0.0;
  {
    const Compressor fresh(cfg);
    const auto c = fresh.compress(data, ext);
    const auto st = fresh.workspace_stats();
    cold_dev_s = sim::modeled_pipeline_seconds(dev, c.stats.pipeline) +
                 sim::modeled_alloc_seconds(dev, st.grow_events);
  }

  Compressor reused(cfg);
  (void)reused.compress(data, ext);  // warm-up: fills the pool once
  double reused_dev_s = 0.0;
  {
    const auto grows_before = reused.workspace_stats().grow_events;
    const auto c = reused.compress(data, ext);
    const auto grows = reused.workspace_stats().grow_events - grows_before;
    reused_dev_s = sim::modeled_pipeline_seconds(dev, c.stats.pipeline) +
                   sim::modeled_alloc_seconds(dev, grows);
  }

  // Host wall clock, for trend tracking only (noisy on shared runners).
  const double cold_s = time_iters(iters, [&] {
    const Compressor fresh(cfg);
    (void)fresh.compress(data, ext);
  });
  const double reused_s = time_iters(iters, [&] { (void)reused.compress(data, ext); });
  const auto pool = reused.workspace_stats();

  const double improvement = 100.0 * (1.0 - reused_dev_s / cold_dev_s);
  const double host_improvement = 100.0 * (1.0 - reused_s / cold_s);
  println("field: %zu float32 (%.1f MB), %d iterations", elems,
          static_cast<double>(elems) * 4 / 1e6, iters);
  println("  modeled %s: cold %8.3f ms/field, reused %8.3f ms/field  (%.1f%% faster)",
          dev.name.c_str(), cold_dev_s * 1e3, reused_dev_s * 1e3, improvement);
  println("  host substrate: cold %8.3f ms/field, reused %8.3f ms/field  (%.1f%% faster)",
          cold_s * 1e3, reused_s * 1e3, host_improvement);
  println("  pool: %zu workspace(s) created, %zu lease(s), %zu grow event(s)",
          pool.created, pool.leases, pool.grow_events);

  // -- Streaming: parallel vs serial slabs, identical containers ------------
  StreamingConfig scfg;
  scfg.base = cfg;
  scfg.max_slab_elems = std::max<std::size_t>(1, elems / 16);
  scfg.parallel = false;
  const StreamingCompressor serial(scfg);
  scfg.parallel = true;
  const StreamingCompressor parallel(scfg);

  const auto serial_bytes = serial.compress(data, ext).bytes;
  const auto parallel_bytes = parallel.compress(data, ext).bytes;
  const bool identical = serial_bytes == parallel_bytes;

  const double serial_s = time_iters(iters, [&] { (void)serial.compress(data, ext); });
  const double parallel_s = time_iters(iters, [&] { (void)parallel.compress(data, ext); });
  println("streaming (%zu-elem slabs): serial %.3f ms, parallel %.3f ms (%.2fx), containers %s",
          scfg.max_slab_elems, serial_s * 1e3, parallel_s * 1e3, serial_s / parallel_s,
          identical ? "byte-identical" : "DIFFER");

  // -- Word-mode contract fast path vs full word shadow ---------------------
  // Under SZP_SIM_CHECK=word (the bench_checked_pipeline leg), kernels whose
  // footprint contracts the prover discharges skip word-shadow
  // instrumentation entirely.  Time the same compression with the fast path
  // on and off: the proof must buy real wall-clock, not just fewer shadow
  // pages.
  bool fastpath_pass = true;
  double fast_s = 0.0, full_s = 0.0;
  if (sim::checked::mode() == sim::checked::Mode::kWord) {
    const int fiters = std::min(iters, 3);
    {
      const sim::contract::ScopedFastpath on(true);
      fast_s = time_iters(fiters, [&] { (void)reused.compress(data, ext); });
    }
    {
      const sim::contract::ScopedFastpath off(false);
      full_s = time_iters(fiters, [&] { (void)reused.compress(data, ext); });
    }
    fastpath_pass = fast_s < full_s;
    println("word-mode fast path: proved-contract %.3f ms/field, full shadow %.3f ms/field "
            "(%.2fx) — %s",
            fast_s * 1e3, full_s * 1e3, full_s / std::max(fast_s, 1e-12),
            fastpath_pass ? "fast path wins" : "FAST PATH DID NOT WIN");
  }

  bool checker_clean = true;
  if (sim::checked::enabled() || sim::checked::fuzz_schedules() > 0) {
    std::fputs(sim::checked::report_text().c_str(), stdout);
    std::fputs(sim::contract::verdict_table_text().c_str(), stdout);
    checker_clean = sim::checked::current_report().clean();
  }

  const bool pass = improvement >= 20.0 && identical && checker_clean && fastpath_pass;
  println("%s: modeled reuse improvement %.1f%% (require >= 20%%), containers %s%s%s%s",
          pass ? "PASS" : "FAIL", improvement, identical ? "identical" : "differ",
          checker_clean ? "" : ", checker findings",
          fastpath_pass ? "" : ", word fast path slower than full shadow",
          smoke ? " [smoke]" : "");

  std::ofstream json(json_path, std::ios::trunc);
  json << "{\n"
       << "  \"elems\": " << elems << ",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"device\": \"" << dev.name << "\",\n"
       << "  \"device_cold_seconds_per_field\": " << cold_dev_s << ",\n"
       << "  \"device_reused_seconds_per_field\": " << reused_dev_s << ",\n"
       << "  \"improvement_percent\": " << improvement << ",\n"
       << "  \"host_cold_seconds_per_field\": " << cold_s << ",\n"
       << "  \"host_reused_seconds_per_field\": " << reused_s << ",\n"
       << "  \"host_improvement_percent\": " << host_improvement << ",\n"
       << "  \"workspaces_created\": " << pool.created << ",\n"
       << "  \"workspace_leases\": " << pool.leases << ",\n"
       << "  \"workspace_grow_events\": " << pool.grow_events << ",\n"
       << "  \"streaming_serial_seconds\": " << serial_s << ",\n"
       << "  \"streaming_parallel_seconds\": " << parallel_s << ",\n"
       << "  \"streaming_containers_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"word_fastpath_seconds\": " << fast_s << ",\n"
       << "  \"word_fullshadow_seconds\": " << full_s << ",\n"
       << "  \"word_fastpath_wins\": " << (fastpath_pass ? "true" : "false") << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n"
       << "}\n";
  println("wrote %s", json_path.c_str());
  return pass ? 0 : 1;
}
