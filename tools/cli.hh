// szp::cli — the `szp` command-line tool, as a library so tests can drive
// it without spawning processes.
//
// Subcommands:
//   compress    -i in.f32 -o out.szp -d ZxYxX [--eb 1e-3] [--abs]
//               [--workflow auto|huffman|rle|rle+vle]
//               [--predictor lorenzo|regression] [--double]
//               [--stream SLAB_ELEMS]
//   decompress  -i in.szp -o out.f32
//   info        -i in.szp
//   gen         -o out.f32 --dataset NAME --field NAME [--scale 0.25]
//
// `-d` takes slowest-to-fastest dims ("100x500x500" = nz x ny x nx), the
// SDRBench convention.  Raw files are bare little-endian float32 (or
// float64 with --double).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace szp::cli {

/// Run the tool.  `args` excludes the program name.  Returns the process
/// exit code; all human output goes to `out`, diagnostics to `err`.
int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace szp::cli
