// szp — mutation-fuzz harness for every decode path.
//
// Round-trips a small field through each workflow (Huffman, RLE, RLE+VLE,
// rANS, all predictors, 1/2/3-D, float/double), the streaming container, the
// bundle, the cuSZ baseline, the lossless codecs (lzh/lzr) and zfp, then
// feeds each archive through deterministic corruption: truncations at
// segment-ish boundaries, single-bit flips, length-field splices to huge
// values, and zeroed headers.  The decode contract under mutation:
//
//   * the decoder throws szp::DecodeError (a clean, typed rejection), or
//   * the archive format has no whole-archive checksum and the mutation
//     happened to produce a semantically valid archive, in which case the
//     decode may succeed (with different data) — but formats protected by a
//     trailing CRC-32 must NEVER accept a mutated archive unless the fuzzer
//     deliberately re-stamped the checksum.
//
// Anything else — another exception type, a crash, a hang, a sanitizer
// report — is a bug, recorded in FuzzResult::failures.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hh"

namespace szp::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 0x5a502b;  ///< deterministic campaign seed
  int rounds = 1;                 ///< repetitions of the randomized classes
  bool verbose = false;           ///< per-mutation narration to `out`
  std::string corpus_dir;         ///< when non-empty, persist novel findings here
};

struct FuzzResult {
  std::size_t mutations = 0;      ///< mutated decodes attempted
  std::size_t clean_errors = 0;   ///< rejected with szp::DecodeError
  std::size_t accepted = 0;       ///< decoded without error (see header note)
  std::size_t corpus_new = 0;     ///< regression artifacts written to corpus_dir
  std::map<DecodeErrorKind, std::size_t> kinds;  ///< taxonomy coverage
  std::vector<std::string> failures;             ///< contract violations

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the campaign; diagnostics go to `out`.
FuzzResult run(const FuzzConfig& cfg, std::ostream& out);

/// Outcome of replaying a committed corpus directory (`szp fuzz --replay`).
/// Every artifact records the mutated archive plus the (kind × segment)
/// verdict it produced when it was captured; replay re-decodes the bytes and
/// fails on any drift — a different kind, a different segment, a different
/// exception type, or silent acceptance.
struct ReplayResult {
  std::size_t artifacts = 0;          ///< corpus files found
  std::size_t matched = 0;            ///< artifacts whose verdict reproduced
  std::vector<std::string> failures;  ///< drift, unreadable files, unknown targets

  [[nodiscard]] bool ok() const { return failures.empty() && artifacts == matched; }
};

/// Replay every `*.szpf` artifact under `dir`; diagnostics go to `out`.
ReplayResult replay(const std::string& dir, std::ostream& out);

}  // namespace szp::fuzz
