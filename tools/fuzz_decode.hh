// szp — mutation-fuzz harness for every decode path.
//
// Round-trips a small field through each workflow (Huffman, RLE, RLE+VLE,
// rANS, all predictors, 1/2/3-D, float/double), the streaming container, the
// bundle, the cuSZ baseline, the lossless codecs (lzh/lzr) and zfp, then
// feeds each archive through deterministic corruption: truncations at
// segment-ish boundaries, single-bit flips, length-field splices to huge
// values, and zeroed headers.  The decode contract under mutation:
//
//   * the decoder throws szp::DecodeError (a clean, typed rejection), or
//   * the archive format has no whole-archive checksum and the mutation
//     happened to produce a semantically valid archive, in which case the
//     decode may succeed (with different data) — but formats protected by a
//     trailing CRC-32 must NEVER accept a mutated archive unless the fuzzer
//     deliberately re-stamped the checksum.
//
// Anything else — another exception type, a crash, a hang, a sanitizer
// report — is a bug, recorded in FuzzResult::failures.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hh"

namespace szp::fuzz {

struct FuzzConfig {
  std::uint64_t seed = 0x5a502b;  ///< deterministic campaign seed
  int rounds = 1;                 ///< repetitions of the randomized classes
  bool verbose = false;           ///< per-mutation narration to `out`
};

struct FuzzResult {
  std::size_t mutations = 0;      ///< mutated decodes attempted
  std::size_t clean_errors = 0;   ///< rejected with szp::DecodeError
  std::size_t accepted = 0;       ///< decoded without error (see header note)
  std::map<DecodeErrorKind, std::size_t> kinds;  ///< taxonomy coverage
  std::vector<std::string> failures;             ///< contract violations

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the campaign; diagnostics go to `out`.
FuzzResult run(const FuzzConfig& cfg, std::ostream& out);

}  // namespace szp::fuzz
