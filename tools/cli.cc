#include "tools/cli.hh"

#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>

#include <cmath>

#include "core/analysis/selector.hh"
#include "core/compressor.hh"
#include "core/error.hh"
#include "core/huffman/codebook.hh"
#include "core/huffman/codec.hh"
#include "core/metrics.hh"
#include "core/bundle.hh"
#include "core/predictor/lorenzo.hh"
#include "core/predictor/regression.hh"
#include "core/rle/rle.hh"
#include "core/streaming.hh"
#include "data/catalog.hh"
#include "data/io.hh"
#include "data/synthetic.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "sim/check.hh"
#include "sim/device_scan.hh"
#include "sim/histogram.hh"
#include "sim/reduce_by_key.hh"
#include "sim/sparse.hh"
#include "tools/fuzz_decode.hh"
#include "zfp/zfp.hh"

namespace szp::cli {

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> flags;

  [[nodiscard]] bool has_flag(const std::string& f) const {
    return std::find(flags.begin(), flags.end(), f) != flags.end();
  }
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::nullopt : std::optional<std::string>(it->second);
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required option " + key);
    return *v;
  }
};

bool takes_value(const std::string& opt) {
  static const std::vector<std::string> valued{"-i",          "-o",      "-d",     "--eb",
                                               "--workflow",  "--codec", "--predictor", "--stream",
                                               "--workers",   "--in",    "--out",
                                               "--memory-budget",
                                               "--dataset",   "--field", "--scale",
                                               "--psnr",      "-a",      "-b",
                                               "--name",      "--bundle",
                                               "--rounds",    "--seed",
                                               "--corpus",    "--replay"};
  return std::find(valued.begin(), valued.end(), opt) != valued.end();
}

Args parse(const std::vector<std::string>& argv) {
  Args a;
  if (argv.empty()) throw std::invalid_argument("no command given");
  a.command = argv[0];
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& tok = argv[i];
    if (tok.empty() || tok[0] != '-') {
      throw std::invalid_argument("unexpected argument '" + tok + "'");
    }
    if (takes_value(tok)) {
      if (i + 1 >= argv.size()) throw std::invalid_argument("option " + tok + " needs a value");
      a.options[tok] = argv[++i];
    } else {
      a.flags.push_back(tok);
    }
  }
  return a;
}

Extents parse_dims(const std::string& spec) {
  std::vector<std::size_t> dims;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    if (part.empty()) throw std::invalid_argument("bad dimension spec '" + spec + "'");
    dims.push_back(static_cast<std::size_t>(std::stoull(part)));
  }
  switch (dims.size()) {
    case 1: return Extents::d1(dims[0]);
    case 2: return Extents::d2(dims[0], dims[1]);
    case 3: return Extents::d3(dims[0], dims[1], dims[2]);
    default: throw std::invalid_argument("dimension spec must have 1-3 parts: '" + spec + "'");
  }
}

Workflow parse_workflow(const std::string& s) {
  if (s == "auto") return Workflow::kAuto;
  if (s == "huffman") return Workflow::kHuffman;
  if (s == "rle") return Workflow::kRle;
  if (s == "rle+vle") return Workflow::kRleVle;
  if (s == "rans") return Workflow::kRans;
  if (s == "lz77") return Workflow::kLz77;
  if (s == "lzh") return Workflow::kLzh;
  if (s == "lzr") return Workflow::kLzr;
  throw std::invalid_argument("unknown codec '" + s + "'");
}

PredictorKind parse_predictor(const std::string& s) {
  if (s == "lorenzo") return PredictorKind::kLorenzo;
  if (s == "regression") return PredictorKind::kRegression;
  if (s == "interpolation") return PredictorKind::kInterpolation;
  throw std::invalid_argument("unknown predictor '" + s + "'");
}

const char* workflow_name(Workflow wf) {
  switch (wf) {
    case Workflow::kHuffman: return "huffman";
    case Workflow::kRle: return "rle";
    case Workflow::kRleVle: return "rle+vle";
    case Workflow::kRans: return "rans";
    case Workflow::kLz77: return "lz77";
    case Workflow::kLzh: return "lzh";
    case Workflow::kLzr: return "lzr";
    case Workflow::kAuto: return "auto";
  }
  return "?";
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open " + path);
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("short read from " + path);
  return bytes;
}

void write_bytes(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("short write to " + path);
}

/// Run `fn` with the simulated-GPU checker active when the user passed
/// --check / --check=word (or enabled it via SZP_SIM_CHECK), and/or with
/// schedule fuzzing when --fuzz-schedule[=N] was given (or
/// SZP_SIM_FUZZ_SCHEDULE); print the findings and fold them into the exit
/// code (0 clean, 3 when the checker fired).
int maybe_checked(const Args& a, std::ostream& out, const std::function<int()>& fn) {
  std::optional<sim::checked::Mode> want_mode;
  if (a.has_flag("--check=word")) {
    want_mode = sim::checked::Mode::kWord;
  } else if (a.has_flag("--check")) {
    want_mode = sim::checked::Mode::kInterval;
  }

  std::optional<int> want_fuzz;
  if (a.has_flag("--fuzz-schedule")) want_fuzz = 4;
  for (const std::string& f : a.flags) {
    if (f.rfind("--fuzz-schedule=", 0) == 0) {
      const int n = std::stoi(f.substr(std::strlen("--fuzz-schedule=")));
      if (n <= 0) throw std::invalid_argument("--fuzz-schedule needs a positive count");
      want_fuzz = n;
    }
  }

  if (!want_mode && !want_fuzz && !sim::checked::enabled() &&
      sim::checked::fuzz_schedules() == 0) {
    return fn();
  }

  // Env-selected settings stay; explicit flags override them for this run.
  sim::checked::ScopedMode mode_guard(want_mode.value_or(sim::checked::mode()));
  sim::checked::ScopedFuzz fuzz_guard(want_fuzz.value_or(sim::checked::fuzz_schedules()));
  const int rc = fn();
  out << sim::checked::report_text();
  if (rc != 0) return rc;
  return sim::checked::current_report().clean() ? 0 : 3;
}

/// Input/output paths accept the classic -i/-o or the long --in/--out.
std::string require_path(const Args& a, const char* short_opt, const char* long_opt) {
  if (const auto v = a.get(short_opt)) return *v;
  if (const auto v = a.get(long_opt)) return *v;
  throw std::invalid_argument(std::string("missing required option ") + short_opt + " (or " +
                              long_opt + ")");
}

/// Byte counts with optional K/M/G (binary) suffix: "64M" -> 67108864.
std::size_t parse_byte_size(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) throw std::invalid_argument("bad byte count '" + s + "'");
  std::size_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = std::size_t{1} << 10; break;
      case 'm': case 'M': mult = std::size_t{1} << 20; break;
      case 'g': case 'G': mult = std::size_t{1} << 30; break;
      default: throw std::invalid_argument("bad byte count '" + s + "'");
    }
    if (*(end + 1) != '\0') throw std::invalid_argument("bad byte count '" + s + "'");
  }
  return static_cast<std::size_t>(v) * mult;
}

/// The streaming knobs shared by both directions of the out-of-core path.
StreamingConfig streaming_config(const Args& a) {
  StreamingConfig scfg;
  scfg.parallel = !a.has_flag("--serial-slabs");
  scfg.use_mmap = !a.has_flag("--no-mmap");
  if (const auto workers = a.get("--workers")) {
    scfg.workers = static_cast<std::size_t>(std::stoull(*workers));
  }
  if (const auto budget = a.get("--memory-budget")) {
    scfg.memory_budget = parse_byte_size(*budget);
  }
  return scfg;
}

template <typename T>
std::vector<T> read_raw(const std::string& path) {
  const auto bytes = read_bytes(path);
  if (bytes.size() % sizeof(T) != 0) {
    throw std::runtime_error(path + " is not a whole number of elements");
  }
  std::vector<T> data(bytes.size() / sizeof(T));
  std::memcpy(data.data(), bytes.data(), bytes.size());
  return data;
}

int cmd_compress(const Args& a, std::ostream& out) {
  const auto in_path = require_path(a, "-i", "--in");
  const auto out_path = require_path(a, "-o", "--out");
  const Extents ext = parse_dims(a.require("-d"));
  const bool is_double = a.has_flag("--double");

  CompressConfig cfg;
  if (const auto psnr = a.get("--psnr")) {
    cfg.eb = ErrorBound::psnr(std::stod(*psnr));
  } else {
    const double eb = std::stod(a.get("--eb").value_or("1e-3"));
    cfg.eb = a.has_flag("--abs") ? ErrorBound::absolute(eb) : ErrorBound::relative(eb);
  }
  // --codec is the canonical spelling now that the lossless tier is
  // pluggable; --workflow stays as the historical alias.
  const auto codec = a.get("--codec");
  cfg.workflow = parse_workflow(codec ? *codec : a.get("--workflow").value_or("auto"));
  cfg.predictor = parse_predictor(a.get("--predictor").value_or("lorenzo"));

  if (a.get("--memory-budget")) {
    // Out-of-core file-to-file: the field streams straight from the input
    // file through the bounded slab pipeline into the output container —
    // never materialized in memory, peak residency capped by the budget.
    StreamingConfig scfg = streaming_config(a);
    scfg.base = cfg;
    if (const auto stream = a.get("--stream")) {
      if (*stream == "auto") {
        scfg.auto_slab_thickness = true;
      } else {
        scfg.max_slab_elems = static_cast<std::size_t>(std::stoull(*stream));
      }
    }
    const auto stats = StreamingCompressor(scfg).compress_file(
        in_path, out_path, ext, is_double ? DType::kFloat64 : DType::kFloat32);
    out << "streamed " << stats.slabs.size() << " slabs (" << stats.workers_used
        << " workers) file-to-file\n";
    out << "peak resident: " << stats.peak_resident_bytes << " bytes (budget "
        << scfg.memory_budget << ")\n";
    out << "compressed " << ext.count() << " values -> " << stats.compressed_bytes
        << " bytes (ratio " << stats.ratio << "x)\n";
    return 0;
  }

  const auto run = [&](auto data) -> std::pair<std::vector<std::uint8_t>, double> {
    if (data.size() != ext.count()) {
      throw std::runtime_error("file holds " + std::to_string(data.size()) +
                               " elements but dims describe " + std::to_string(ext.count()));
    }
    if (const auto stream = a.get("--stream")) {
      StreamingConfig scfg;
      scfg.base = cfg;
      if (*stream == "auto") {
        // Keep the default memory cap but let the planner pick a slab
        // thickness sized to the worker pool (~3 slabs per worker).
        scfg.auto_slab_thickness = true;
      } else {
        scfg.max_slab_elems = static_cast<std::size_t>(std::stoull(*stream));
      }
      scfg.parallel = !a.has_flag("--serial-slabs");
      if (const auto workers = a.get("--workers")) {
        scfg.workers = static_cast<std::size_t>(std::stoull(*workers));
      }
      auto c = StreamingCompressor(scfg).compress(data, ext);
      out << "streamed " << c.stats.slabs.size() << " slabs (" << c.stats.workers_used
          << " workers)\n";
      return {std::move(c.bytes), c.stats.ratio};
    }
    auto c = Compressor(cfg).compress(data, ext);
    out << "workflow: " << workflow_name(c.stats.workflow_used)
        << "  outliers: " << c.stats.outlier_count << "\n";
    return {std::move(c.bytes), c.stats.ratio};
  };

  const auto [bytes, ratio] =
      is_double ? run(read_raw<double>(in_path)) : run(read_raw<float>(in_path));
  write_bytes(out_path, bytes);
  out << "compressed " << ext.count() << " values -> " << bytes.size() << " bytes (ratio "
      << ratio << "x)\n";
  return 0;
}

int cmd_decompress(const Args& a, std::ostream& out) {
  const auto in_path = require_path(a, "-i", "--in");
  const auto out_path = require_path(a, "-o", "--out");

  if (a.get("--memory-budget")) {
    // Out-of-core file-to-file: containers stream slab-by-slab; a bare
    // archive has no slab structure to stream, so it falls through to the
    // in-memory path below.
    std::array<char, 4> magic{};
    std::ifstream probe(in_path, std::ios::binary);
    probe.read(magic.data(), magic.size());
    if (probe.gcount() == 4 && std::memcmp(magic.data(), "SZPC", 4) == 0) {
      const StreamingConfig scfg = streaming_config(a);
      const auto info = StreamingCompressor::decompress_file(in_path, out_path, scfg);
      out << "streamed " << info.stats.slabs.size() << " slabs (" << info.stats.workers_used
          << " workers) file-to-file\n";
      out << "peak resident: " << info.stats.peak_resident_bytes << " bytes (budget "
          << scfg.memory_budget << ")\n";
      out << "decompressed " << info.stats.compressed_bytes << " bytes -> "
          << info.stats.original_bytes << " bytes\n";
      return 0;
    }
    out << "note: not an SZPC container; --memory-budget ignored\n";
  }

  const auto bytes = read_bytes(in_path);

  // Containers and single archives are distinguished by magic.
  std::vector<std::uint8_t> raw;
  if (bytes.size() >= 4 && std::memcmp(bytes.data(), "SZPC", 4) == 0) {
    StreamingConfig scfg;
    scfg.parallel = !a.has_flag("--serial-slabs");
    if (const auto workers = a.get("--workers")) {
      scfg.workers = static_cast<std::size_t>(std::stoull(*workers));
    }
    auto d = StreamingCompressor::decompress(bytes, scfg);
    if (d.dtype == DType::kFloat32) {
      raw.resize(d.data.size() * sizeof(float));
      std::memcpy(raw.data(), d.data.data(), raw.size());
    } else {
      raw.resize(d.data_f64.size() * sizeof(double));
      std::memcpy(raw.data(), d.data_f64.data(), raw.size());
    }
  } else {
    auto d = Compressor::decompress(bytes);
    if (d.dtype == DType::kFloat32) {
      raw.resize(d.data.size() * sizeof(float));
      std::memcpy(raw.data(), d.data.data(), raw.size());
    } else {
      raw.resize(d.data_f64.size() * sizeof(double));
      std::memcpy(raw.data(), d.data_f64.data(), raw.size());
    }
  }
  write_bytes(out_path, raw);
  out << "decompressed " << bytes.size() << " bytes -> " << raw.size() << " bytes\n";
  return 0;
}

int cmd_info(const Args& a, std::ostream& out) {
  const auto bytes = read_bytes(a.require("-i"));
  if (bytes.size() >= 4 && std::memcmp(bytes.data(), "SZPC", 4) == 0) {
    out << "szp streaming container, " << StreamingCompressor::slab_count(bytes)
        << " slabs, " << bytes.size() << " bytes\n";
    return 0;
  }
  const auto info = Compressor::inspect(bytes);
  out << "szp archive: rank " << info.extents.rank << ", dims " << info.extents.nz << "x"
      << info.extents.ny << "x" << info.extents.nx << " (z*y*x), "
      << (info.dtype == DType::kFloat32 ? "float32" : "float64") << "\n";
  out << "workflow: " << workflow_name(info.workflow) << ", predictor: "
      << (info.predictor == PredictorKind::kLorenzo       ? "lorenzo"
          : info.predictor == PredictorKind::kRegression  ? "regression"
                                                          : "interpolation")
      << ", quantizer capacity: " << info.capacity << "\n";
  out << "absolute error bound: " << info.eb_abs << "\n";
  out << "compressed size: " << bytes.size() << " bytes (ratio "
      << static_cast<double>(info.extents.count() *
                             (info.dtype == DType::kFloat32 ? 4 : 8)) /
             static_cast<double>(bytes.size())
      << "x)\n";
  return 0;
}

int cmd_gen(const Args& a, std::ostream& out) {
  const auto out_path = a.require("-o");
  const auto dataset = a.require("--dataset");
  const auto field = a.require("--field");
  const double scale = std::stod(a.get("--scale").value_or("0.25"));

  const auto ds = data::make_dataset(dataset, scale);
  const auto& f = data::find_field(ds, field);
  const auto values = data::generate_field(f.spec);
  data::write_f32(out_path, values);
  const Extents& e = f.spec.extents;
  out << "generated " << dataset << "/" << field << ": dims " << e.nz << "x" << e.ny << "x"
      << e.nx << " (" << values.size() * 4 / (1 << 20) << " MB) -> " << out_path << "\n";
  out << "hint: szp compress -i " << out_path << " -o field.szp -d " << e.nz << "x" << e.ny
      << "x" << e.nx << " --eb 1e-3\n";
  return 0;
}

int cmd_bundle_add(const Args& a, std::ostream& out) {
  const auto bundle_path = a.require("--bundle");
  const auto name = a.require("--name");
  const auto archive = read_bytes(a.require("-i"));

  Bundle bundle;
  if (std::ifstream probe(bundle_path, std::ios::binary); probe.good()) {
    bundle = Bundle::deserialize(read_bytes(bundle_path));
  }
  bundle.add(name, archive);
  write_bytes(bundle_path, bundle.serialize());
  out << "bundle " << bundle_path << ": " << bundle.size() << " field(s)\n";
  return 0;
}

/// Shared --tolerant loader: salvage what verifies, warn about the rest.
Bundle load_bundle(const Args& a, std::ostream& out) {
  const auto bytes = read_bytes(a.require("--bundle"));
  if (!a.has_flag("--tolerant")) {
    return Bundle::deserialize(bytes);
  }
  auto salvage = Bundle::deserialize_tolerant(bytes);
  if (!salvage.container_crc_ok) {
    out << "warning: bundle checksum mismatch; salvaging per-entry\n";
  }
  for (const auto& name : salvage.corrupt) {
    out << "warning: corrupt entry '" << name << "' skipped\n";
  }
  return std::move(salvage.bundle);
}

int cmd_bundle_list(const Args& a, std::ostream& out) {
  const auto bundle = load_bundle(a, out);
  for (const auto& e : bundle.entries()) {
    out << e.name << "\t" << e.compressed_bytes << " bytes\n";
  }
  out << bundle.size() << " field(s)\n";
  return 0;
}

int cmd_bundle_extract(const Args& a, std::ostream& out) {
  const auto bundle = load_bundle(a, out);
  const auto name = a.require("--name");
  write_bytes(a.require("-o"), bundle.archive(name));
  out << "extracted '" << name << "' (" << bundle.archive(name).size() << " bytes)\n";
  return 0;
}

int cmd_fuzz(const Args& a, std::ostream& out) {
  if (const auto replay_dir = a.get("--replay")) {
    const auto res = fuzz::replay(*replay_dir, out);
    return res.ok() ? 0 : 1;
  }
  fuzz::FuzzConfig cfg;
  if (const auto rounds = a.get("--rounds")) cfg.rounds = std::stoi(*rounds);
  if (const auto seed = a.get("--seed")) cfg.seed = std::stoull(*seed);
  if (const auto corpus = a.get("--corpus")) cfg.corpus_dir = *corpus;
  cfg.verbose = a.has_flag("-v") || a.has_flag("--verbose");
  if (cfg.rounds <= 0) throw std::invalid_argument("--rounds needs a positive count");
  const auto res = fuzz::run(cfg, out);
  return res.ok() ? 0 : 1;
}

int cmd_verify(const Args& a, std::ostream& out) {
  const bool is_double = a.has_flag("--double");
  const auto run = [&](auto reader) {
    const auto x = reader(a.require("-a"));
    const auto y = reader(a.require("-b"));
    if (x.size() != y.size()) {
      throw std::runtime_error("files hold different element counts (" +
                               std::to_string(x.size()) + " vs " + std::to_string(y.size()) + ")");
    }
    return compare_fields(x, y);
  };
  const auto m = is_double ? run([](const std::string& p) { return read_raw<double>(p); })
                           : run([](const std::string& p) { return read_raw<float>(p); });
  out << "max |error|: " << m.max_abs_error << "\n";
  out << "MSE:         " << m.mse << "\n";
  out << "PSNR:        " << m.psnr_db << " dB\n";
  out << "NRMSE:       " << m.nrmse << "\n";
  out << "value range: " << m.value_range << "\n";
  return 0;
}

/// Canned workload behind `szp analyze`: every checked-launch kernel in the
/// codebase runs at least once, at sizes that make each grid multi-block, so
/// the contract registry holds a verdict for the complete kernel inventory.
void analyze_suite() {
  const QuantConfig qcfg;
  const double eb = 1e-3;

  // --- Lorenzo + regression over a 3-D field (8x8x8 chunks -> 2x2x2 grid).
  const Extents e3 = Extents::d3(12, 10, 9);
  std::vector<float> field(e3.count());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = std::sin(0.05f * static_cast<float>(i));
  }
  const auto lc = lorenzo_construct<float>(field, e3, eb, qcfg);
  std::vector<qdiff_t> qprime(e3.count());
  fuse_quant_codes({lc.quant.data(), lc.quant.size()}, qcfg.radius(),
                   std::span<qdiff_t>(qprime));
  std::vector<float> rec(e3.count());
  lorenzo_reconstruct_fused<float>(std::span<qdiff_t>(qprime), e3, eb, std::span<float>(rec));
  const auto lv =
      lorenzo_construct<float>(field, e3, eb, qcfg, OutlierScheme::kValue,
                               ConstructVariant::kBaseline);
  lorenzo_reconstruct_coarse<float>({lv.quant.data(), lv.quant.size()},
                                    {lv.outlier_dense.data(), lv.outlier_dense.size()}, e3, eb,
                                    qcfg, std::span<float>(rec));

  RegressionResult rg;
  regression_construct_into<float>(field, e3, eb, qcfg, rg);
  regression_reconstruct<float>({rg.quant.data(), rg.quant.size()},
                                {rg.outlier_dense.data(), rg.outlier_dense.size()},
                                rg.coefficients, e3, eb, qcfg, std::span<float>(rec));

  // --- 1-D symbol pipeline: histogram, Huffman (gap-strided and plain),
  // scans, RLE / reduce_by_key, dense<->sparse.  Small tiles keep every
  // grid multi-block without a large workload.
  const std::size_t n = 20000;
  std::vector<quant_t> syms(n);
  for (std::size_t i = 0; i < n; ++i) {
    syms[i] = static_cast<quant_t>(512 + (i / 97) % 16);
  }
  const auto freq = sim::device_histogram(std::span<const quant_t>(syms), qcfg.capacity, 4096);
  const auto book = HuffmanCodebook::build(freq);
  const auto plain = huffman_encode(syms, book, 1024, HuffmanEncVariant::kOptimized, 0);
  (void)huffman_decode(plain, book);
  const auto gapped = huffman_encode(syms, book, 1024, HuffmanEncVariant::kOptimized, 256);
  (void)huffman_decode(gapped, book);

  (void)rle_encode(syms);  // reduce_by_key/tile_runs (single tile at this n)
  std::vector<quant_t> runs(100000);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i] = static_cast<quant_t>(i / 1000);
  }
  (void)rle_decode(rle_encode(runs));  // multi-tile runs + rle_decode/expand

  std::vector<std::uint64_t> lens(n / 4), offs(n / 4);
  for (std::size_t i = 0; i < lens.size(); ++i) lens[i] = i % 13;
  sim::device_exclusive_scan(std::span<const std::uint64_t>(lens),
                             std::span<std::uint64_t>(offs), 512);

  std::vector<qdiff_t> dense(n, 0);
  for (std::size_t i = 0; i < n; i += 37) dense[i] = static_cast<qdiff_t>(i);
  const auto sparse = sim::dense_to_sparse(std::span<const qdiff_t>(dense), 4096);
  std::vector<std::int64_t> acc(n, 0);
  sim::scatter_add(sparse, std::span<std::int64_t>(acc));

  // --- ZFP at both grid shapes (1-D linear-ish and genuinely 3-D).
  const Extents z3 = Extents::d3(9, 9, 9);
  std::vector<float> zfield(z3.count());
  for (std::size_t i = 0; i < zfield.size(); ++i) {
    zfield[i] = std::cos(0.1f * static_cast<float>(i));
  }
  zfp::ZfpConfig zcfg;
  (void)zfp::zfp_decompress(zfp::zfp_compress(zfield, z3, zcfg).bytes);
  const Extents z1 = Extents::d1(100);
  std::vector<float> zline(zfield.begin(), zfield.begin() + 100);
  (void)zfp::zfp_decompress(zfp::zfp_compress(zline, z1, zcfg).bytes);

  // --- LZ family (tokenize + frequency kernels + both entropy backends).
  std::vector<std::uint8_t> text(40000);
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<std::uint8_t>("abcabcabd"[i % 9] + (i / 9000));
  }
  (void)lossless::lzh_decompress(lossless::lzh_compress(text));
  (void)lossless::lzr_decompress(lossless::lzr_compress(text));

  // --- Pluggable codec tier: round-trip through every workflow that packs
  // quant codes into bytes, so codec/quant_pack and codec/quant_unpack (and
  // each codec's encode/decode stages) register traffic rows.
  const Extents ce = Extents::d1(20000);
  std::vector<float> cfield(ce.count());
  for (std::size_t i = 0; i < cfield.size(); ++i) {
    cfield[i] = std::sin(0.02f * static_cast<float>(i));
  }
  for (const Workflow wf : {Workflow::kLz77, Workflow::kLzh, Workflow::kLzr,
                            Workflow::kRans}) {
    CompressConfig ccfg;
    ccfg.eb = ErrorBound::absolute(1e-3);
    ccfg.workflow = wf;
    (void)Compressor::decompress(Compressor(ccfg).compress(cfield, ce).bytes);
  }
}

/// `szp analyze --codecs`: run the cost-model selector over canned quant-code
/// histograms spanning the compressibility regimes and print the full score
/// table — every registered codec, best first — for each.  The histograms are
/// fixed, so the output is deterministic.
void codec_score_tables(std::ostream& out) {
  struct Scenario {
    const char* name;
    double p1;  ///< mass on the dominant (zero-difference) symbol
  };
  // p1 sweeps from "every neighbor differs" to "one long plateau".
  constexpr Scenario kScenarios[] = {
      {"rough (p1=0.50)", 0.50},
      {"mixed (p1=0.90)", 0.90},
      {"smooth (p1=0.99)", 0.99},
      {"plateau (p1=0.9999)", 0.9999},
  };
  constexpr std::uint64_t kTotal = 1000000;

  out << "codec cost-model score tables (1M f32 quant codes, V100 model)\n";
  for (const auto& sc : kScenarios) {
    std::vector<std::uint64_t> freq(1024, 0);
    freq[512] = static_cast<std::uint64_t>(sc.p1 * static_cast<double>(kTotal));
    const std::uint64_t rest = kTotal - freq[512];
    for (int k = 1; k <= 4; ++k) {
      freq[512 + k] = rest / 8;
      freq[512 - k] = rest / 8;
    }
    const auto d = select_workflow(freq, sizeof(float));
    out << "\n" << sc.name << "  (H=" << std::fixed << std::setprecision(3)
        << d.stats.entropy_bits << " bits, huffman<b>=" << d.est_avg_bits << ")\n";
    out << "  codec     <b>est   fixed_B   ratio_est   enc_ms    dec_ms    score\n";
    for (const auto& s : d.scores) {
      out << "  " << std::left << std::setw(9) << workflow_name(s.workflow) << std::right
          << std::setw(7) << std::setprecision(3) << s.est_bits_per_symbol << "  "
          << std::setw(8) << std::setprecision(0) << s.est_fixed_bytes << "  "
          << std::setw(10) << std::setprecision(2) << s.est_ratio << "  "
          << std::setw(8) << std::setprecision(4) << s.modeled_encode_seconds * 1e3 << "  "
          << std::setw(8) << s.modeled_decode_seconds * 1e3 << "  "
          << std::setw(7) << s.score << "\n";
    }
    out << "  -> selected: " << workflow_name(d.workflow) << "\n";
  }
  out << std::defaultfloat << std::setprecision(6);
}

int cmd_analyze(const Args& a, std::ostream& out) {
  if (a.has_flag("--codecs")) {
    codec_score_tables(out);
    return 0;
  }
  // Interval-tier checking for the whole suite: every launch is proved (or
  // honestly falls back) and its observed footprint is cross-validated
  // against the declaration — including the statically derived traffic
  // volumes, which accumulate per kernel while checking is on.
  sim::checked::ScopedMode mode_guard(sim::checked::Mode::kInterval);
  sim::checked::reset();
  sim::contract::reset_registry();
  sim::traffic::reset_registry();

  analyze_suite();

  out << sim::contract::verdict_table_text();
  const bool want_traffic = a.has_flag("--traffic");
  const bool want_roofline = a.has_flag("--roofline");
  if (want_traffic) out << sim::traffic::traffic_table_text();
  if (want_roofline) out << sim::traffic::roofline_table_text(sim::v100());
  out << sim::checked::report_text();

  // Traffic coverage: every contract-carrying kernel the suite exercised
  // must have derived nonzero volumes — a zero or absent row means a
  // contract whose clauses the analyzer cannot see traffic through.
  bool uncovered = false;
  if (want_traffic || want_roofline) {
    const auto traffic_rows = sim::traffic::registry_snapshot();
    for (const auto& v : sim::contract::registry_snapshot()) {
      const auto it =
          std::find_if(traffic_rows.begin(), traffic_rows.end(),
                       [&](const auto& t) { return t.kernel == v.kernel; });
      if (it == traffic_rows.end() || it->bytes_read == 0 || it->bytes_written == 0) {
        out << "TRAFFIC-UNCOVERED: kernel '" << v.kernel
            << "' has no nonzero derived read+write volume\n";
        uncovered = true;
      }
    }
  }

  bool missing = false;
  for (const auto& v : sim::contract::registry_snapshot()) {
    missing |= v.verdict == sim::contract::Verdict::kNoContract;
  }
  if (!sim::checked::current_report().clean() || uncovered) return 3;
  return missing ? 5 : 0;
}

void usage(std::ostream& err) {
  err << "szp — error-bounded lossy compressor for scientific data (cuSZ+ reproduction)\n"
         "usage:\n"
         "  szp compress   -i in.f32 -o out.szp -d ZxYxX [--eb 1e-3] [--abs]\n"
         "                 [--codec auto|huffman|rle|rle+vle|rans|lz77|lzh|lzr]\n"
         "                 [--predictor lorenzo|regression|interpolation] [--double]\n"
         "                 [--stream N|auto] [--serial-slabs] [--workers N]\n"
         "                 [--memory-budget BYTES[K|M|G]] [--no-mmap]\n"
         "                 [--check | --check=word] [--fuzz-schedule[=N]]\n"
         "  szp decompress -i in.szp -o out.f32 [--serial-slabs] [--workers N]\n"
         "                 [--memory-budget BYTES[K|M|G]] [--no-mmap]\n"
         "                 [--check | --check=word] [--fuzz-schedule[=N]]\n"
         "  szp info       -i in.szp\n"
         "  szp gen        -o out.f32 --dataset CESM-ATM --field FSDSC [--scale 0.25]\n"
         "  szp verify     -a original.f32 -b restored.f32 [--double]\n"
         "  szp bundle-add     --bundle snap.szb --name VAR -i field.szp\n"
         "  szp bundle-list    --bundle snap.szb [--tolerant]\n"
         "  szp bundle-extract --bundle snap.szb --name VAR -o field.szp [--tolerant]\n"
         "  szp fuzz           [--rounds N] [--seed S] [--corpus DIR] [-v]\n"
         "  szp fuzz           --replay DIR\n"
         "  szp analyze    [--traffic] [--roofline] [--codecs]\n"
         "compress also accepts --psnr TARGET_DB in place of --eb, and\n"
         "--workflow as a historical alias for --codec.  --codec auto (the\n"
         "default) ranks every registered lossless codec with the cost model\n"
         "and picks the best under the ratio/throughput objective.\n"
         "--tolerant salvages the intact entries of a corrupt bundle (warnings list\n"
         "the damaged ones).  fuzz mutates round-trip archives of every format and\n"
         "verifies each decoder rejects corruption with a clean error (exit 1 if the\n"
         "contract is violated).  --corpus DIR saves one mutant per novel rejection\n"
         "site (DecodeError kind x segment) as a regression artifact, plus the\n"
         "smallest tail-truncated prefix that still reproduces the verdict (as\n"
         "KIND__SEGMENT__min.szpf); --replay DIR re-decodes a committed corpus and\n"
         "fails on any verdict drift.\n"
         "A corrupt or truncated input archive exits with 4.  --stream compresses\n"
         "slabs in parallel by default (--stream auto additionally sizes slabs to\n"
         "the worker pool); --serial-slabs forces one-at-a-time in both directions\n"
         "(the container bytes are identical either way).  --workers N (or the\n"
         "SZP_WORKERS environment variable) sets the slab worker-pool size.\n"
         "--memory-budget BYTES (K/M/G suffixes accepted; --in/--out work as\n"
         "aliases for -i/-o) switches both directions to the out-of-core\n"
         "file-to-file path: the field streams through the slab pipeline without\n"
         "ever being materialized in memory, slab thickness and queue window are\n"
         "resolved so peak residency stays within the budget (refused with a\n"
         "clear error when even one single-plane slab cannot fit), and the\n"
         "container bytes are identical to the in-memory path under the same\n"
         "config.  Ingest uses mmap when available; --no-mmap forces positional\n"
         "reads through budget-metered staging buffers.\n"
         "--check replays the run under the simulated-GPU race & bounds checker\n"
         "(exit 3 if violations are found); SZP_SIM_CHECK=1 enables it globally.\n"
         "--check=word upgrades to word-granular shadow memory (racecheck-style\n"
         "intra-block hazard detection; SZP_SIM_CHECK=word globally).\n"
         "--fuzz-schedule[=N] replays every multi-block kernel under N perturbed\n"
         "block orders and reports any output divergence (SZP_SIM_FUZZ_SCHEDULE=N).\n"
         "analyze runs a canned workload over every simulated-GPU kernel under\n"
         "interval checking and prints the footprint-contract verdict per kernel:\n"
         "proved (cross-block disjointness + bounds discharged statically, so\n"
         "--check=word skips word-shadow instrumentation for it), unproved-\n"
         "fallback-dynamic (honest reason printed; dynamic checking remains the\n"
         "authority), or no-contract.  Exit 5 if any kernel lacks a contract,\n"
         "3 if the checker fired.  --traffic adds the statically derived\n"
         "per-kernel byte-volume & coalescing table (from the same contracts);\n"
         "--roofline classifies each kernel bandwidth- vs compute-bound against\n"
         "the V100 DeviceSpec.  Either flag also fails (exit 3) when a\n"
         "contract-carrying kernel has no nonzero derived volumes.\n"
         "analyze --codecs instead prints the selector's deterministic score\n"
         "table — every registered lossless codec ranked by the cost model —\n"
         "over canned quant-code histograms spanning the compressibility\n"
         "regimes (rough through plateau).\n";
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  try {
    const Args a = parse(args);
    if (a.command == "compress") {
      return maybe_checked(a, out, [&] { return cmd_compress(a, out); });
    }
    if (a.command == "decompress") {
      return maybe_checked(a, out, [&] { return cmd_decompress(a, out); });
    }
    if (a.command == "analyze") return cmd_analyze(a, out);
    if (a.command == "info") return cmd_info(a, out);
    if (a.command == "gen") return cmd_gen(a, out);
    if (a.command == "verify") return cmd_verify(a, out);
    if (a.command == "bundle-add") return cmd_bundle_add(a, out);
    if (a.command == "bundle-list") return cmd_bundle_list(a, out);
    if (a.command == "bundle-extract") return cmd_bundle_extract(a, out);
    if (a.command == "fuzz") return cmd_fuzz(a, out);
    if (a.command == "help" || a.command == "--help" || a.command == "-h") {
      usage(out);
      return 0;
    }
    err << "unknown command '" << a.command << "'\n";
    usage(err);
    return 2;
  } catch (const DecodeError& e) {
    err << "error: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace szp::cli
