// The `szp` command-line entry point; all logic lives in cli.cc so the
// test suite can drive it in-process.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hh"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    args.emplace_back("help");
  }
  return szp::cli::run(args, std::cout, std::cerr);
}
