#include "tools/fuzz_decode.hh"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <iterator>
#include <optional>
#include <set>
#include <span>
#include <typeinfo>
#include <utility>
#include <vector>

#include "baseline/cusz_ref.hh"
#include "core/bundle.hh"
#include "core/checksum.hh"
#include "core/compressor.hh"
#include "core/serialize.hh"
#include "core/streaming.hh"
#include "data/io.hh"
#include "lossless/lzh.hh"
#include "lossless/lzr.hh"
#include "zfp/zfp.hh"

namespace szp::fuzz {

namespace {

/// splitmix64 — tiny, seedable, and good enough to scatter mutations.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

/// One archive under test: how to decode it and whether its format carries a
/// whole-archive CRC (which makes silent acceptance of a mutation a bug).
struct Target {
  std::string name;
  std::vector<std::uint8_t> archive;
  std::function<void(std::span<const std::uint8_t>)> decode;
  bool whole_crc = false;  ///< trailing CRC-32 over everything before it
};

std::vector<float> wave_f32(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = static_cast<float>(std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017));
  }
  return v;
}

std::vector<double> wave_f64(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    v[i] = std::sin(x * 0.05) + 0.3 * std::cos(x * 0.017);
  }
  return v;
}

std::vector<std::uint8_t> sample_text(std::size_t n) {
  const std::string phrase = "error-bounded lossy compression of scientific data ";
  std::vector<std::uint8_t> v;
  v.reserve(n);
  while (v.size() < n) {
    const std::size_t take = std::min(phrase.size(), n - v.size());
    v.insert(v.end(), phrase.begin(), phrase.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return v;
}

/// Decode through the file-based out-of-core path: the mutant round-trips
/// through disk so FileFieldSource ingest (positional reads, no mmap view),
/// the streaming slab-directory walk, and FileSink emission all face the
/// corrupted bytes — the same route `szp -d --memory-budget` takes.
void decode_via_file(std::span<const std::uint8_t> bytes) {
  namespace fs = std::filesystem;
  // Scratch is keyed by PID: campaigns run concurrently under parallel
  // ctest, and a shared mutant path lets one process truncate the file
  // underneath another's read — a leaked runtime_error the contract
  // (DecodeError-only) then flags as a spurious violation.
  const fs::path dir = fs::temp_directory_path() /
                       ("szp_fuzz_oocore." + std::to_string(::getpid()));
  fs::create_directories(dir);
  data::write_bytes(dir / "mutant.szpc", bytes);
  StreamingConfig cfg;
  cfg.use_mmap = false;
  (void)StreamingCompressor::decompress_file(dir / "mutant.szpc", dir / "mutant.raw", cfg);
}

Target szp_target(const std::string& name, Workflow wf, PredictorKind pred,
                  const Extents& ext, bool f64) {
  CompressConfig cfg;
  cfg.eb = ErrorBound::absolute(1e-3);
  cfg.workflow = wf;
  cfg.predictor = pred;
  Target t;
  t.name = name;
  t.archive = f64 ? Compressor(cfg).compress(wave_f64(ext.count()), ext).bytes
                  : Compressor(cfg).compress(wave_f32(ext.count()), ext).bytes;
  t.decode = [](std::span<const std::uint8_t> b) { (void)Compressor::decompress(b); };
  t.whole_crc = true;
  return t;
}

std::vector<Target> make_targets() {
  std::vector<Target> targets;

  targets.push_back(szp_target("szp/huffman-1d-f32", Workflow::kHuffman,
                               PredictorKind::kLorenzo, Extents::d1(2048), false));
  targets.push_back(szp_target("szp/rle-1d-f32", Workflow::kRle, PredictorKind::kLorenzo,
                               Extents::d1(2048), false));
  targets.push_back(szp_target("szp/rle+vle-2d-f32", Workflow::kRleVle,
                               PredictorKind::kLorenzo, Extents::d2(48, 40), false));
  targets.push_back(szp_target("szp/rans-1d-f32", Workflow::kRans, PredictorKind::kLorenzo,
                               Extents::d1(2048), false));
  // The LZ quant-code codecs write archive format v3; fuzzing them covers
  // the token-stream validation paths the v2 codecs never reach.
  targets.push_back(szp_target("szp/lz77-1d-f32", Workflow::kLz77, PredictorKind::kLorenzo,
                               Extents::d1(2048), false));
  targets.push_back(szp_target("szp/lzh-2d-f32", Workflow::kLzh, PredictorKind::kLorenzo,
                               Extents::d2(48, 40), false));
  targets.push_back(szp_target("szp/lzr-1d-f32", Workflow::kLzr, PredictorKind::kLorenzo,
                               Extents::d1(2048), false));
  targets.push_back(szp_target("szp/huffman-3d-f32", Workflow::kHuffman,
                               PredictorKind::kLorenzo, Extents::d3(12, 10, 8), false));
  targets.push_back(szp_target("szp/huffman-2d-f64", Workflow::kHuffman,
                               PredictorKind::kLorenzo, Extents::d2(40, 32), true));
  targets.push_back(szp_target("szp/regression-2d-f32", Workflow::kHuffman,
                               PredictorKind::kRegression, Extents::d2(48, 40), false));
  targets.push_back(szp_target("szp/interp-1d-f32", Workflow::kHuffman,
                               PredictorKind::kInterpolation, Extents::d1(2048), false));

  {
    Target t;
    t.name = "streaming/huffman-1d-f32";
    StreamingConfig scfg;
    scfg.base.eb = ErrorBound::absolute(1e-3);
    scfg.base.workflow = Workflow::kHuffman;
    scfg.max_slab_elems = 512;
    const Extents ext = Extents::d1(2048);
    t.archive = StreamingCompressor(scfg).compress(wave_f32(ext.count()), ext).bytes;
    t.decode = [](std::span<const std::uint8_t> b) {
      (void)StreamingCompressor::decompress(b);
    };
    // The container itself has no trailing CRC; its nested slabs do.
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "streaming-file/huffman-1d-f32";
    StreamingConfig scfg;
    scfg.base.eb = ErrorBound::absolute(1e-3);
    scfg.base.workflow = Workflow::kHuffman;
    scfg.max_slab_elems = 512;
    const Extents ext = Extents::d1(2048);
    t.archive = StreamingCompressor(scfg).compress(wave_f32(ext.count()), ext).bytes;
    t.decode = [](std::span<const std::uint8_t> b) { decode_via_file(b); };
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "bundle/two-fields";
    CompressConfig cfg;
    cfg.eb = ErrorBound::absolute(1e-3);
    const Extents ext = Extents::d1(512);
    Bundle b;
    b.add("alpha", Compressor(cfg).compress(wave_f32(ext.count()), ext).bytes);
    b.add("beta", Compressor(cfg).compress(wave_f64(ext.count()), ext).bytes);
    t.archive = b.serialize();
    t.decode = [](std::span<const std::uint8_t> bytes) { (void)Bundle::deserialize(bytes); };
    t.whole_crc = true;
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "baseline/cusz-2d-f32";
    const Extents ext = Extents::d2(48, 40);
    t.archive = baseline::CuszCompressor().compress(wave_f32(ext.count()), ext).bytes;
    t.decode = [](std::span<const std::uint8_t> b) {
      (void)baseline::CuszCompressor::decompress(b);
    };
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "lossless/lzh";
    t.archive = lossless::lzh_compress(sample_text(4096), {});
    t.decode = [](std::span<const std::uint8_t> b) { (void)lossless::lzh_decompress(b); };
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "lossless/lzr";
    t.archive = lossless::lzr_compress(sample_text(4096), {});
    t.decode = [](std::span<const std::uint8_t> b) { (void)lossless::lzr_decompress(b); };
    targets.push_back(std::move(t));
  }

  {
    Target t;
    t.name = "zfp/2d-f32";
    const Extents ext = Extents::d2(40, 32);
    t.archive = zfp::zfp_compress(wave_f32(ext.count()), ext, {}).bytes;
    t.decode = [](std::span<const std::uint8_t> b) { (void)zfp::zfp_decompress(b); };
    targets.push_back(std::move(t));
  }

  return targets;
}

/// Re-stamp the trailing CRC-32 so a mutation survives the whole-archive
/// checksum and exercises the structural validation behind it.
void fix_trailing_crc(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 4) return;
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 4));
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
}

// ---------------------------------------------------------------------------
// Regression corpus.  Each artifact is one mutated archive plus the verdict
// it produced, serialized self-describing so replay needs no manifest and no
// archive regeneration:
//
//   u32 magic "SZPF" | u8 version | u8 kind | str target | str segment |
//   vec<u8> mutated archive
//
// where str/vec use the ByteWriter length-prefixed encoding.  The dedup key
// is (DecodeError kind × segment): the corpus keeps the first mutant that
// reached each distinct rejection site, which is exactly the granularity the
// decode contract is specified at.

constexpr std::uint32_t kCorpusMagic = 0x46505A53;  // "SZPF"
constexpr std::uint8_t kCorpusVersion = 1;

void put_str(ByteWriter& w, const std::string& s) {
  w.put_span(std::span<const char>(s.data(), s.size()));
}
std::string get_str(ByteReader& r) {
  const auto v = r.get_vector<char>();
  return {v.begin(), v.end()};
}

/// Parsed artifact (see the layout note above).
struct CorpusEntry {
  DecodeErrorKind kind = DecodeErrorKind::kCorruptStream;
  std::string target;
  std::string segment;
  std::vector<std::uint8_t> archive;
};

std::vector<std::uint8_t> serialize_entry(const CorpusEntry& e) {
  ByteWriter w;
  w.put(kCorpusMagic);
  w.put(kCorpusVersion);
  w.put(static_cast<std::uint8_t>(e.kind));
  put_str(w, e.target);
  put_str(w, e.segment);
  w.put_vector(e.archive);
  return w.take();
}

CorpusEntry parse_entry(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  r.set_segment("corpus artifact");
  if (r.get<std::uint32_t>() != kCorpusMagic) {
    throw DecodeError(DecodeErrorKind::kBadMagic, "corpus artifact", "not an SZPF artifact");
  }
  if (r.get<std::uint8_t>() != kCorpusVersion) {
    throw DecodeError(DecodeErrorKind::kBadVersion, "corpus artifact",
                      "unsupported artifact version");
  }
  CorpusEntry e;
  const auto kind = r.get<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(DecodeErrorKind::kCorruptStream)) {
    throw DecodeError(DecodeErrorKind::kCorruptStream, "corpus artifact",
                      "unknown DecodeError kind " + std::to_string(kind));
  }
  e.kind = static_cast<DecodeErrorKind>(kind);
  e.target = get_str(r);
  e.segment = get_str(r);
  e.archive = r.get_vector<std::uint8_t>();
  return e;
}

/// Stateless decoder dispatch by target-name prefix, shared by the live
/// campaign (which owns Target closures) and replay (which has only names).
std::function<void(std::span<const std::uint8_t>)> decoder_for(const std::string& name) {
  if (name.rfind("szp/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { (void)Compressor::decompress(b); };
  }
  if (name.rfind("streaming-file/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { decode_via_file(b); };
  }
  if (name.rfind("streaming/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { (void)StreamingCompressor::decompress(b); };
  }
  if (name.rfind("bundle/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { (void)Bundle::deserialize(b); };
  }
  if (name.rfind("baseline/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { (void)baseline::CuszCompressor::decompress(b); };
  }
  if (name == "lossless/lzh") {
    return [](std::span<const std::uint8_t> b) { (void)lossless::lzh_decompress(b); };
  }
  if (name == "lossless/lzr") {
    return [](std::span<const std::uint8_t> b) { (void)lossless::lzr_decompress(b); };
  }
  if (name.rfind("zfp/", 0) == 0) {
    return [](std::span<const std::uint8_t> b) { (void)zfp::zfp_decompress(b); };
  }
  return nullptr;
}

std::string sanitize_for_filename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(keep ? c : '-');
  }
  return out;
}

std::function<void(std::span<const std::uint8_t>)> decoder_for(const std::string& name);

/// Shrink a reproducer by greedy tail truncation: repeatedly drop the longest
/// suffix that preserves the (kind × segment) verdict, halving the step until
/// single bytes.  Tail cuts keep the artifact a *prefix* of the original
/// mutant, so the shrunken archive still exercises the same parse path up to
/// the rejection point.
std::vector<std::uint8_t> shrink_reproducer(
    const CorpusEntry& e, const std::function<void(std::span<const std::uint8_t>)>& decode) {
  const auto verdict_holds = [&](std::span<const std::uint8_t> bytes) {
    try {
      decode(bytes);
      return false;
    } catch (const DecodeError& err) {
      return err.kind() == e.kind && err.segment() == e.segment;
    } catch (...) {
      return false;  // a leaked exception is a different bug, not this verdict
    }
  };
  std::vector<std::uint8_t> best = e.archive;
  for (std::size_t step = std::max<std::size_t>(1, best.size() / 2); step >= 1; step /= 2) {
    while (best.size() > step &&
           verdict_holds(std::span<const std::uint8_t>(best.data(), best.size() - step))) {
      best.resize(best.size() - step);
    }
  }
  if (!best.empty() && verdict_holds(std::span<const std::uint8_t>())) best.clear();
  return best;
}

/// Persists artifacts per novel (kind × segment) pair: the first mutant that
/// reached the rejection site, plus — when tail truncation can shrink it —
/// the smallest prefix reproducer as `<kind>__<segment>__min.szpf`.
/// Pre-seeds the seen-set from whatever is already committed under `dir`, so
/// repeated campaigns (and CI re-runs) only ever add genuinely new rejection
/// sites.
class CorpusWriter {
 public:
  explicit CorpusWriter(std::string dir) : dir_(std::move(dir)) {
    std::filesystem::create_directories(dir_);
    for (const auto& ent : std::filesystem::directory_iterator(dir_)) {
      if (ent.path().extension() != ".szpf") continue;
      try {
        const CorpusEntry e = parse_entry(data::read_bytes(ent.path()));
        seen_.emplace(e.kind, e.segment);
      } catch (const DecodeError&) {
        // Unreadable artifacts are replay's problem to report, not ours.
      }
    }
  }

  /// Returns true when the finding was new and an artifact was written.
  bool offer(const std::string& target, const DecodeError& err,
             std::span<const std::uint8_t> mutated) {
    if (!seen_.emplace(err.kind(), err.segment()).second) return false;
    CorpusEntry e;
    e.kind = err.kind();
    e.target = target;
    e.segment = err.segment();
    e.archive.assign(mutated.begin(), mutated.end());
    const std::string stem = std::string(decode_error_kind_name(e.kind)) + "__" +
                             sanitize_for_filename(e.segment);
    data::write_bytes(std::filesystem::path(dir_) / (stem + ".szpf"), serialize_entry(e));

    // The min artifact replays through the same decoder as the original, so
    // it must carry an identical verdict — shrink_reproducer guarantees that.
    if (const auto decode = decoder_for(e.target)) {
      CorpusEntry m = e;
      m.archive = shrink_reproducer(e, decode);
      if (m.archive.size() < e.archive.size()) {
        data::write_bytes(std::filesystem::path(dir_) / (stem + "__min.szpf"),
                          serialize_entry(m));
      }
    }
    return true;
  }

 private:
  std::string dir_;
  std::set<std::pair<DecodeErrorKind, std::string>> seen_;
};

/// One campaign step: decode `mutated` and judge the outcome against the
/// contract in the header comment.
struct Judge {
  const FuzzConfig& cfg;
  FuzzResult& res;
  std::ostream& out;
  CorpusWriter* corpus = nullptr;

  void operator()(const Target& t, const std::string& mutation,
                  std::vector<std::uint8_t> mutated, bool crc_fixed) {
    ++res.mutations;
    const bool changed = mutated != t.archive;
    try {
      t.decode(mutated);
      ++res.accepted;
      if (t.whole_crc && changed && !crc_fixed) {
        res.failures.push_back(t.name + " [" + mutation +
                               "]: CRC-protected archive silently accepted a mutation");
      } else if (cfg.verbose) {
        out << "  " << t.name << " [" << mutation << "]: accepted\n";
      }
    } catch (const DecodeError& e) {
      ++res.clean_errors;
      ++res.kinds[e.kind()];
      if (corpus != nullptr && corpus->offer(t.name, e, mutated)) {
        ++res.corpus_new;
        if (cfg.verbose) {
          out << "  " << t.name << " [" << mutation << "]: new corpus artifact ("
              << decode_error_kind_name(e.kind()) << " in " << e.segment() << ")\n";
        }
      }
      if (cfg.verbose) {
        out << "  " << t.name << " [" << mutation << "]: " << e.what() << "\n";
      }
    } catch (const std::exception& e) {
      res.failures.push_back(t.name + " [" + mutation + "]: leaked " +
                             std::string(typeid(e).name()) + ": " + e.what());
    } catch (...) {
      res.failures.push_back(t.name + " [" + mutation + "]: leaked a non-std exception");
    }
  }
};

void fuzz_target(const Target& t, const FuzzConfig& cfg, Judge& judge, Rng& rng) {
  const std::vector<std::uint8_t>& a = t.archive;
  const std::size_t n = a.size();

  // -- Truncations: tiny prefixes, 8-byte boundaries through the header
  //    region, coarse fractions, and off-by-a-few at the tail.
  std::vector<std::size_t> cuts;
  for (std::size_t k = 0; k <= 8 && k < n; ++k) cuts.push_back(k);
  for (std::size_t k = 16; k <= 64 && k < n; k += 8) cuts.push_back(k);
  for (const std::size_t num : {1, 2, 3}) cuts.push_back(num * n / 4);
  for (std::size_t k = 1; k <= 8 && k < n; ++k) cuts.push_back(n - k);
  for (const std::size_t cut : cuts) {
    judge(t, "truncate@" + std::to_string(cut),
          std::vector<std::uint8_t>(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(cut)),
          false);
  }

  // -- Zeroed header: wipes magic/version/extents in one stroke.
  {
    auto m = a;
    std::fill(m.begin(), m.begin() + static_cast<std::ptrdiff_t>(std::min<std::size_t>(16, n)),
              std::uint8_t{0});
    judge(t, "zero-header", std::move(m), false);
  }

  for (int round = 0; round < cfg.rounds; ++round) {
    // -- Single-bit flips scattered over the whole archive.
    for (int i = 0; i < 48; ++i) {
      auto m = a;
      const std::size_t byte = rng.below(n);
      m[byte] = static_cast<std::uint8_t>(m[byte] ^ (1u << rng.below(8)));
      judge(t, "bitflip@" + std::to_string(byte), std::move(m), false);
    }

    // -- Length-field splices: overwrite an aligned u64 with a value chosen
    //    to overflow a size computation or an allocation.
    constexpr std::uint64_t kSplices[] = {
        0xffffffffffffffffull, 0x7fffffffffffffffull, 0x8000000000000000ull,
        0xffffffffull, 0xffffffffffffffffull / 2, 0ull};
    for (int i = 0; i < 12 && n >= 8; ++i) {
      auto m = a;
      const std::size_t at = rng.below(n / 8) * 8;
      const std::uint64_t v = kSplices[rng.below(std::size(kSplices))];
      std::memcpy(m.data() + at, &v, std::min<std::size_t>(8, n - at));
      judge(t, "splice-u64@" + std::to_string(at), std::move(m), false);
    }

    // -- CRC-protected formats: re-stamp the trailer so mutations reach the
    //    structural validators behind the checksum.  Success is then allowed
    //    (the bytes may decode to different data); crashes are not.
    if (t.whole_crc) {
      for (int i = 0; i < 24; ++i) {
        auto m = a;
        if (i % 2 == 0) {
          const std::size_t byte = rng.below(n > 4 ? n - 4 : n);
          m[byte] = static_cast<std::uint8_t>(m[byte] ^ (1u << rng.below(8)));
        } else if (n >= 16) {
          const std::size_t at = rng.below((n - 8) / 8) * 8;
          const std::uint64_t v = kSplices[rng.below(std::size(kSplices))];
          std::memcpy(m.data() + at, &v, 8);
        }
        fix_trailing_crc(m);
        judge(t, "crc-fixed mutation #" + std::to_string(i), std::move(m), true);
      }
    }
  }
}

}  // namespace

FuzzResult run(const FuzzConfig& cfg, std::ostream& out) {
  FuzzResult res;
  const auto targets = make_targets();
  std::optional<CorpusWriter> corpus;
  if (!cfg.corpus_dir.empty()) corpus.emplace(cfg.corpus_dir);
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    const Target& t = targets[ti];
    // Per-target RNG stream: adding a target never reshuffles the others.
    Rng rng{cfg.seed ^ (0x100000001b3ull * (ti + 1))};
    Judge judge{cfg, res, out, corpus ? &*corpus : nullptr};
    if (cfg.verbose) out << t.name << " (" << t.archive.size() << " bytes)\n";
    fuzz_target(t, cfg, judge, rng);
  }
  out << "fuzz: " << res.mutations << " mutated decodes over " << targets.size()
      << " targets: " << res.clean_errors << " clean rejections, " << res.accepted
      << " accepted, " << res.failures.size() << " contract violations\n";
  if (corpus) {
    out << "corpus: " << res.corpus_new << " new artifact(s) written to " << cfg.corpus_dir
        << "\n";
  }
  for (const auto& f : res.failures) out << "  FAILURE: " << f << "\n";
  return res;
}

ReplayResult replay(const std::string& dir, std::ostream& out) {
  ReplayResult res;
  std::vector<std::filesystem::path> files;
  if (std::filesystem::is_directory(dir)) {
    for (const auto& ent : std::filesystem::directory_iterator(dir)) {
      if (ent.path().extension() == ".szpf") files.push_back(ent.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    ++res.artifacts;
    CorpusEntry e;
    try {
      e = parse_entry(data::read_bytes(path));
    } catch (const std::exception& ex) {
      res.failures.push_back(path.filename().string() + ": unreadable artifact: " + ex.what());
      continue;
    }
    const auto decode = decoder_for(e.target);
    if (!decode) {
      res.failures.push_back(path.filename().string() + ": unknown target '" + e.target + "'");
      continue;
    }
    const std::string want = std::string(decode_error_kind_name(e.kind)) + " in " + e.segment;
    try {
      decode(e.archive);
      res.failures.push_back(path.filename().string() + ": expected " + want +
                             ", decode accepted the archive");
    } catch (const DecodeError& err) {
      if (err.kind() == e.kind && err.segment() == e.segment) {
        ++res.matched;
        out << "  " << path.filename().string() << ": reproduced (" << want << ")\n";
      } else {
        res.failures.push_back(path.filename().string() + ": verdict drift: expected " + want +
                               ", got " + decode_error_kind_name(err.kind()) + " in " +
                               err.segment());
      }
    } catch (const std::exception& ex) {
      res.failures.push_back(path.filename().string() + ": expected " + want + ", leaked " +
                             std::string(typeid(ex).name()) + ": " + ex.what());
    }
  }
  out << "replay: " << res.matched << "/" << res.artifacts << " artifact(s) reproduced from "
      << dir << ", " << res.failures.size() << " failure(s)\n";
  for (const auto& f : res.failures) out << "  FAILURE: " << f << "\n";
  return res;
}

}  // namespace szp::fuzz
