#!/usr/bin/env sh
# Run clang-tidy over the project sources using the compile database from a
# configured build tree.  Usage:
#
#   tools/lint.sh [build-dir] [extra clang-tidy args...]
#
# The build dir defaults to ./build; it must have been configured with CMake
# (compile_commands.json is exported by default, see CMakeLists.txt).  Also
# reachable as `cmake --build <build-dir> -t lint`.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
[ $# -gt 0 ] && shift

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint.sh: no compile_commands.json in '${build_dir}'." >&2
  echo "  Configure first: cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 2
fi

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "lint.sh: '${tidy}' not found; install clang-tidy or set CLANG_TIDY." >&2
  exit 2
fi

# First-party translation units only — keep third-party and generated code out.
files=$(find "${repo_root}/src" "${repo_root}/tools" "${repo_root}/bench" \
          "${repo_root}/examples" -name '*.cc' 2>/dev/null | sort)

echo "lint.sh: checking $(printf '%s\n' "${files}" | wc -l | tr -d ' ') files"
# shellcheck disable=SC2086
exec "${tidy}" -p "${build_dir}" --quiet "$@" ${files}
