#!/usr/bin/env sh
# Static checks over the project sources.  Usage:
#
#   tools/lint.sh [build-dir] [extra clang-tidy args...]
#   tools/lint.sh --contracts-only
#
# Three phases:
#   1. Footprint-contract coverage: every chk::launch / checked::launch(_3d)
#      call site in src/ must register a contract (a `contract` token inside
#      the call's parenthesis extent).  Pure text check, no toolchain needed.
#   2. Static traffic coverage: `szp analyze --traffic` must exit clean —
#      every registered kernel carries contract-derived volumes in the
#      traffic table.  Skipped when the build tree has no szp binary.
#   3. clang-tidy over all first-party translation units, using the compile
#      database from a configured build tree (compile_commands.json is
#      exported by default, see CMakeLists.txt).  Warnings are errors (see
#      .clang-tidy WarningsAsErrors).
#
# --contracts-only runs phase 1 alone — the `lint` CMake target falls back to
# it when clang-tidy is not installed.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

contracts_only=0
if [ "${1:-}" = "--contracts-only" ]; then
  contracts_only=1
  shift
fi

# --- Phase 1: every checked launch declares a footprint contract. ----------
check_contracts() {
  bad=0
  for f in $(find "${repo_root}/src" \( -name '*.cc' -o -name '*.hh' \) | sort); do
    awk -v file="$f" '
      {
        line = $0
        sub(/\/\/.*/, "", line)  # strip line comments (doc examples)
        while (length(line) > 0) {
          if (!in_launch) {
            if (match(line, /(chk|checked)::launch(_3d)?\(/)) {
              in_launch = 1; depth = 0; seen = 0; start = NR
              line = substr(line, RSTART)
            } else break
          }
          n = length(line)
          consumed = n
          closed = 0
          for (i = 1; i <= n; i++) {
            c = substr(line, i, 1)
            if (c == "(") depth++
            else if (c == ")") {
              depth--
              if (depth == 0) {
                closed = 1
                consumed = i
                break
              }
            }
          }
          # Only text inside the call extent can satisfy the requirement: a
          # `contract` token after the closing paren — or inside parens
          # re-opened later on the same line by the next statement — belongs
          # to that statement, not to this launch.
          if (substr(line, 1, consumed) ~ /contract/) seen = 1
          if (closed) {
            if (!seen) {
              printf "%s:%d: checked launch without a footprint contract\n", file, start
              bad = 1
            }
            in_launch = 0
          }
          line = substr(line, consumed + 1)
          if (in_launch) break  # call continues on the next input line
        }
      }
      END { exit bad }
    ' "$f" || bad=1
  done
  return ${bad}
}

echo "lint.sh: checking footprint-contract coverage of checked launches"
check_contracts || {
  echo "lint.sh: contract coverage check FAILED" >&2
  exit 1
}
echo "lint.sh: contract coverage OK"

if [ "${contracts_only}" = 1 ]; then
  exit 0
fi

build_dir=${1:-"${repo_root}/build"}
[ $# -gt 0 ] && shift

# --- Phase 2: static traffic coverage. -------------------------------------
# Every registered kernel must have a row with derived volumes in the traffic
# table (`szp analyze --traffic` exits 3 on an uncovered kernel or a
# checker/traffic finding, 5 on a missing contract).  Needs the built CLI;
# skipped with a note when the build tree has none.
szp_bin="${build_dir}/tools/szp"
if [ -x "${szp_bin}" ]; then
  echo "lint.sh: checking static traffic coverage (szp analyze --traffic)"
  traffic_out=$("${szp_bin}" analyze --traffic) || {
    echo "lint.sh: traffic coverage FAILED — registered kernel missing from" \
         "the traffic table, or a finding fired (rerun: szp analyze --traffic)" >&2
    exit 1
  }
  # The suite only covers kernels it actually launches, so additionally pin
  # the codec-tier kernel inventory: if the canned workload stops exercising
  # one of these (e.g. a codec is dropped from the analyze round-trips), the
  # lint fails rather than silently shrinking coverage.
  for k in codec/quant_pack codec/quant_unpack lz77/tokenize lz77/token_freq \
           lzh/encode lzh/decode lzr/token_split lzr/expand; do
    if ! printf '%s\n' "${traffic_out}" | grep -q "${k}"; then
      echo "lint.sh: traffic coverage FAILED — codec kernel '${k}' missing" \
           "from the traffic table (analyze workload no longer exercises it)" >&2
      exit 1
    fi
  done
  echo "lint.sh: traffic coverage OK (codec-tier kernels pinned)"
else
  echo "lint.sh: skipping traffic coverage (no szp binary under '${build_dir}')"
fi

# --- Phase 3: clang-tidy. --------------------------------------------------
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint.sh: no compile_commands.json in '${build_dir}'." >&2
  echo "  Configure first: cmake -B '${build_dir}' -S '${repo_root}'" >&2
  exit 2
fi

tidy=${CLANG_TIDY:-clang-tidy}
if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "lint.sh: '${tidy}' not found; install clang-tidy or set CLANG_TIDY." >&2
  exit 2
fi

# First-party translation units only — keep third-party and generated code out.
files=$(find "${repo_root}/src" "${repo_root}/tools" "${repo_root}/bench" \
          "${repo_root}/examples" -name '*.cc' 2>/dev/null | sort)

echo "lint.sh: checking $(printf '%s\n' "${files}" | wc -l | tr -d ' ') files"
# -Wthread-safety feeds the clang-diagnostic-thread-safety* gate (see
# .clang-tidy WarningsAsErrors and core/thread_safety.hh).
# shellcheck disable=SC2086
exec "${tidy}" -p "${build_dir}" --quiet --extra-arg=-Wthread-safety "$@" ${files}
